"""The in-process transport: queue pairs between spaces in one process.

This is both the unit-test workhorse and the "same address space is
cheap" end of the latency spectrum in the E1 experiment.  Each
connection is a pair of unbounded queues; ``close`` wakes the peer
with a sentinel so readers terminate promptly.
"""

from __future__ import annotations

import queue
import threading
from typing import Dict, Optional

from repro.errors import CommFailure
from repro.transport.base import Channel, Listener, OnConnect, Transport, split_endpoint

_EOF = object()


class QueueChannel(Channel):
    """One direction-pair of in-process queues."""
    def __init__(self, inbox: "queue.SimpleQueue", outbox: "queue.SimpleQueue"):
        self._inbox = inbox
        self._outbox = outbox
        self._closed = threading.Event()
        self._peer_closed = threading.Event()

    def send(self, payload) -> None:
        # Accepts any bytes-like payload.  The object is handed to the
        # peer as-is (no copy): callers sending a reusable buffer must
        # go through ``send_framed``, which copies exactly once.
        if self._closed.is_set() or self._peer_closed.is_set():
            raise CommFailure("channel is closed")
        self._outbox.put(payload)

    def recv(self, timeout: Optional[float] = None) -> Optional[bytes]:
        if self._closed.is_set():
            return None
        try:
            item = self._inbox.get(timeout=timeout)
        except queue.Empty:
            raise CommFailure("recv timed out") from None
        if item is _EOF:
            self._peer_closed.set()
            return None
        return item

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        self._outbox.put(_EOF)
        # Unblock our own reader too.
        self._inbox.put(_EOF)

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


def channel_pair() -> "tuple[QueueChannel, QueueChannel]":
    """A connected pair of channels (useful directly in tests).

    ``SimpleQueue`` rather than ``Queue``: the C implementation costs a
    fraction of a ``Condition`` dance per put/get, and this channel sits
    under every E1 in-process measurement.
    """
    a_to_b: "queue.SimpleQueue" = queue.SimpleQueue()
    b_to_a: "queue.SimpleQueue" = queue.SimpleQueue()
    return QueueChannel(b_to_a, a_to_b), QueueChannel(a_to_b, b_to_a)


class _InProcListener(Listener):
    def __init__(self, transport: "InProcessTransport", endpoint: str,
                 on_connect: OnConnect):
        self.endpoint = endpoint
        self.on_connect = on_connect
        self._transport = transport

    def close(self) -> None:
        self._transport._unlisten(self.endpoint)


class InProcessTransport(Transport):
    """Transport with a per-instance name registry.

    Distinct instances are isolated namespaces; a shared instance is a
    "machine" hosting several spaces.  :meth:`default` returns the
    process-wide instance that :class:`~repro.core.space.Space` uses
    unless told otherwise.
    """

    scheme = "inproc"

    _default: Optional["InProcessTransport"] = None
    _default_lock = threading.Lock()

    def __init__(self) -> None:
        self._listeners: Dict[str, _InProcListener] = {}
        self._lock = threading.Lock()

    @classmethod
    def default(cls) -> "InProcessTransport":
        with cls._default_lock:
            if cls._default is None:
                cls._default = cls()
            return cls._default

    def listen(self, endpoint: str, on_connect: OnConnect) -> Listener:
        scheme, name = split_endpoint(endpoint)
        if scheme != self.scheme:
            raise CommFailure(f"not an inproc endpoint: {endpoint!r}")
        listener = _InProcListener(self, endpoint, on_connect)
        with self._lock:
            if endpoint in self._listeners:
                raise CommFailure(f"endpoint already in use: {endpoint!r}")
            self._listeners[endpoint] = listener
        return listener

    def connect(self, endpoint: str) -> Channel:
        with self._lock:
            listener = self._listeners.get(endpoint)
        if listener is None:
            raise CommFailure(f"connection refused: {endpoint!r}")
        client_side, server_side = channel_pair()
        # Hand the server side to the acceptor on a fresh thread, as a
        # real transport's accept loop would.
        threading.Thread(
            target=listener.on_connect,
            args=(server_side,),
            name=f"inproc-accept-{endpoint}",
            daemon=True,
        ).start()
        return client_side

    def _unlisten(self, endpoint: str) -> None:
        with self._lock:
            self._listeners.pop(endpoint, None)
