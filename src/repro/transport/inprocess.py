"""The in-process transport: queue pairs between spaces in one process.

This is both the unit-test workhorse and the "same address space is
cheap" end of the latency spectrum in the E1 experiment.  Each
connection is a pair of *bounded* queues (:class:`_Pipe`): a sender
that outruns its receiver first blocks briefly, then fails with
:class:`~repro.errors.CommFailure` — the same budgeted-backlog
semantics the reactor path enforces on TCP corks, so sim/inproc tests
exercise admission control too.  ``close`` wakes the peer with a
sentinel (which bypasses the bound: teardown never blocks) so readers
terminate promptly.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Dict, Optional

from repro.errors import CommFailure
from repro.transport.base import Channel, Listener, OnConnect, Transport, split_endpoint

_EOF = object()

#: Default per-direction frame budget.  Generous — ordinary request /
#: reply traffic never queues more than its pipelining depth — but a
#: peer that has stopped reading hits it quickly.
DEFAULT_PIPE_CAPACITY = 1024

#: How long a sender may wait for the peer to drain before the send
#: fails.  Short: an in-process peer that cannot drain within this is
#: wedged, not slow.
DEFAULT_SEND_TIMEOUT = 5.0


class _Pipe:
    """One direction of a channel pair: a ``SimpleQueue`` with a
    budget.

    The hot path stays the C-implemented ``SimpleQueue`` put/get (this
    pipe sits under every E1 in-process measurement); the bound is
    enforced with a ``qsize`` check, and only a sender that actually
    finds the pipe full pays for the condition dance.  The budget is
    approximate under concurrent senders — by one or two frames, which
    is all a backlog cap needs to be.
    """

    __slots__ = ("q", "capacity", "_cond", "_waiters")

    def __init__(self, capacity: int = DEFAULT_PIPE_CAPACITY):
        self.q: "queue.SimpleQueue" = queue.SimpleQueue()
        self.capacity = capacity
        self._cond = threading.Condition()
        self._waiters = 0

    def wait_for_space(self, timeout: float, abandoned) -> bool:
        """Block until ``qsize`` drops below capacity; False on
        timeout.  ``abandoned()`` short-circuits the wait (channel
        closed under us)."""
        deadline = time.monotonic() + timeout
        with self._cond:
            self._waiters += 1
            try:
                while self.q.qsize() >= self.capacity:
                    if abandoned():
                        return True  # the send will fail on the closed check
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    self._cond.wait(min(remaining, 0.05))
                return True
            finally:
                self._waiters -= 1

    def notify_drain(self) -> None:
        """Called by the receiver after each get; only locks when a
        sender is actually parked."""
        if self._waiters:
            with self._cond:
                self._cond.notify_all()


class QueueChannel(Channel):
    """One direction-pair of in-process pipes."""
    def __init__(self, inbox: _Pipe, outbox: _Pipe,
                 send_timeout: float = DEFAULT_SEND_TIMEOUT):
        self._inbox = inbox
        self._outbox = outbox
        self._send_timeout = send_timeout
        self._closed = threading.Event()
        self._peer_closed = threading.Event()

    def send(self, payload) -> None:
        # Accepts any bytes-like payload.  The object is handed to the
        # peer as-is (no copy): callers sending a reusable buffer must
        # go through ``send_framed``, which copies exactly once.
        if self._closed.is_set() or self._peer_closed.is_set():
            raise CommFailure("channel is closed")
        outbox = self._outbox
        if outbox.q.qsize() >= outbox.capacity:
            if not outbox.wait_for_space(
                self._send_timeout,
                lambda: self._closed.is_set() or self._peer_closed.is_set(),
            ):
                raise CommFailure(
                    f"in-process send backlog exceeded {outbox.capacity} "
                    f"frames (peer not reading)"
                )
            if self._closed.is_set() or self._peer_closed.is_set():
                raise CommFailure("channel is closed")
        outbox.q.put(payload)

    def recv(self, timeout: Optional[float] = None) -> Optional[bytes]:
        if self._closed.is_set():
            return None
        try:
            item = self._inbox.q.get(timeout=timeout)
        except queue.Empty:
            raise CommFailure("recv timed out") from None
        self._inbox.notify_drain()
        if item is _EOF:
            self._peer_closed.set()
            return None
        return item

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        # EOF bypasses the budget: teardown must never block behind a
        # full pipe, and the pipes' waiters re-check closed state.
        self._outbox.q.put(_EOF)
        # Unblock our own reader too.
        self._inbox.q.put(_EOF)

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


def channel_pair(
    capacity: int = DEFAULT_PIPE_CAPACITY,
    send_timeout: float = DEFAULT_SEND_TIMEOUT,
) -> "tuple[QueueChannel, QueueChannel]":
    """A connected pair of channels (useful directly in tests).

    ``capacity``/``send_timeout`` tune the per-direction budget —
    tests drop them to a handful of frames to provoke the backlog
    failure deterministically.
    """
    a_to_b = _Pipe(capacity)
    b_to_a = _Pipe(capacity)
    return (
        QueueChannel(b_to_a, a_to_b, send_timeout),
        QueueChannel(a_to_b, b_to_a, send_timeout),
    )


class _InProcListener(Listener):
    def __init__(self, transport: "InProcessTransport", endpoint: str,
                 on_connect: OnConnect):
        self.endpoint = endpoint
        self.on_connect = on_connect
        self._transport = transport

    def close(self) -> None:
        self._transport._unlisten(self.endpoint)


class InProcessTransport(Transport):
    """Transport with a per-instance name registry.

    Distinct instances are isolated namespaces; a shared instance is a
    "machine" hosting several spaces.  :meth:`default` returns the
    process-wide instance that :class:`~repro.core.space.Space` uses
    unless told otherwise.
    """

    scheme = "inproc"

    _default: Optional["InProcessTransport"] = None
    _default_lock = threading.Lock()

    def __init__(self) -> None:
        self._listeners: Dict[str, _InProcListener] = {}
        self._lock = threading.Lock()

    @classmethod
    def default(cls) -> "InProcessTransport":
        with cls._default_lock:
            if cls._default is None:
                cls._default = cls()
            return cls._default

    def listen(self, endpoint: str, on_connect: OnConnect) -> Listener:
        scheme, name = split_endpoint(endpoint)
        if scheme != self.scheme:
            raise CommFailure(f"not an inproc endpoint: {endpoint!r}")
        listener = _InProcListener(self, endpoint, on_connect)
        with self._lock:
            if endpoint in self._listeners:
                raise CommFailure(f"endpoint already in use: {endpoint!r}")
            self._listeners[endpoint] = listener
        return listener

    def connect(self, endpoint: str) -> Channel:
        with self._lock:
            listener = self._listeners.get(endpoint)
        if listener is None:
            raise CommFailure(f"connection refused: {endpoint!r}")
        client_side, server_side = channel_pair()
        # Hand the server side to the acceptor on a fresh thread, as a
        # real transport's accept loop would.
        threading.Thread(
            target=listener.on_connect,
            args=(server_side,),
            name=f"inproc-accept-{endpoint}",
            daemon=True,
        ).start()
        return client_side

    def _unlisten(self, endpoint: str) -> None:
        with self._lock:
            self._listeners.pop(endpoint, None)
