"""A live connection between two spaces.

After the HELLO/HELLO_ACK handshake the connection is symmetric: each
side allocates its own call ids, keeps its own pending-call table, and
serves whatever requests the peer sends.  One daemon reader thread per
connection decodes envelopes only: replies complete a pending call on
the issuer's thread, requests go to the space's dispatcher.  Argument
and result pickles are *not* decoded on the reader thread — blocking
work (including nested dirty calls triggered by unpickling) happens in
the thread that owns the call.
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable, Optional

from repro.errors import CallTimeout, CommFailure, ProtocolError
from repro.rpc import messages
from repro.rpc.dispatcher import Dispatcher
from repro.transport.base import Channel
from repro.wire.ids import SpaceID

#: Default per-call deadline, generous enough for loaded CI machines.
DEFAULT_CALL_TIMEOUT = 30.0


class _PendingCall:
    __slots__ = ("event", "reply", "failure")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.reply: Optional[messages.Message] = None
        self.failure: Optional[Exception] = None


class Connection:
    """One handshaken channel plus its reader thread."""

    def __init__(
        self,
        channel: Channel,
        local_id: SpaceID,
        dispatcher: Dispatcher,
        handle_request: Callable[["Connection", messages.Message], None],
        on_close: Optional[Callable[["Connection"], None]] = None,
        outbound: bool = True,
        handshake_timeout: float = 10.0,
    ):
        self._channel = channel
        self._local_id = local_id
        self._dispatcher = dispatcher
        self._handle_request = handle_request
        self._on_close = on_close
        self._pending: dict[int, _PendingCall] = {}
        self._pending_lock = threading.Lock()
        self._call_ids = itertools.count(1)
        self._closed = threading.Event()
        self.peer_id: Optional[SpaceID] = None

        self._handshake(outbound, handshake_timeout)
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"conn-reader-{self.peer_id}",
            daemon=True,
        )
        self._reader.start()

    # -- handshake ------------------------------------------------------------

    def _handshake(self, outbound: bool, timeout: float) -> None:
        hello = messages.Hello(self._local_id, self._local_id.nickname)
        ack = messages.HelloAck(self._local_id, self._local_id.nickname)
        try:
            if outbound:
                self._channel.send(hello.encode())
                reply = self._expect_handshake(messages.HelloAck, timeout)
            else:
                reply = self._expect_handshake(messages.Hello, timeout)
                self._channel.send(ack.encode())
        except CommFailure:
            self._channel.close()
            raise
        if reply.version != hello.version:
            self._channel.close()
            raise ProtocolError(
                f"protocol version mismatch: ours {hello.version}, "
                f"peer {reply.version}"
            )
        self.peer_id = reply.space_id

    def _expect_handshake(self, expected_type, timeout: float):
        frame = self._channel.recv(timeout=timeout)
        if frame is None:
            raise CommFailure("peer closed during handshake")
        message = messages.decode(frame)
        if not type(message) is expected_type:
            raise ProtocolError(
                f"expected {expected_type.__name__} during handshake, "
                f"got {type(message).__name__}"
            )
        return message

    # -- outgoing traffic -------------------------------------------------------

    def next_call_id(self) -> int:
        return next(self._call_ids)

    def send(self, message: messages.Message) -> None:
        """Fire-and-forget send (results, acks, one-way GC messages)."""
        if self._closed.is_set():
            raise CommFailure("connection closed")
        self._channel.send(message.encode())

    def call(
        self,
        message: messages.Message,
        timeout: float = DEFAULT_CALL_TIMEOUT,
    ) -> messages.Message:
        """Send a request carrying ``message.call_id``; await its reply."""
        call_id = message.call_id
        pending = _PendingCall()
        with self._pending_lock:
            if self._closed.is_set():
                raise CommFailure("connection closed")
            self._pending[call_id] = pending
        try:
            self._channel.send(message.encode())
        except CommFailure:
            with self._pending_lock:
                self._pending.pop(call_id, None)
            raise
        if not pending.event.wait(timeout):
            with self._pending_lock:
                self._pending.pop(call_id, None)
            raise CallTimeout(
                f"no reply to call {call_id} within {timeout:.1f}s"
            )
        if pending.failure is not None:
            raise pending.failure
        assert pending.reply is not None
        return pending.reply

    # -- incoming traffic -------------------------------------------------------

    def _read_loop(self) -> None:
        failure: Exception = CommFailure("connection closed by peer")
        try:
            while not self._closed.is_set():
                frame = self._channel.recv()
                if frame is None:
                    break
                try:
                    message = messages.decode(frame)
                except Exception as exc:  # corrupt frame: drop connection
                    failure = ProtocolError(f"undecodable frame: {exc}")
                    break
                if isinstance(message, messages.Bye):
                    break
                if message.tag in messages.REPLY_TAGS:
                    self._complete(message)
                else:
                    self._dispatcher.submit(
                        lambda m=message: self._handle_request(self, m)
                    )
        except CommFailure as exc:
            failure = exc
        finally:
            self._teardown(failure)

    def _complete(self, reply: messages.Message) -> None:
        with self._pending_lock:
            pending = self._pending.pop(reply.call_id, None)
        if pending is not None:
            pending.reply = reply
            pending.event.set()
        # Replies to calls we gave up on (timeout) are dropped silently.

    # -- teardown -------------------------------------------------------------

    def close(self, notify_peer: bool = True) -> None:
        if self._closed.is_set():
            return
        if notify_peer:
            try:
                self._channel.send(messages.Bye().encode())
            except CommFailure:
                pass
        self._channel.close()
        self._teardown(CommFailure("connection closed locally"))

    def _teardown(self, failure: Exception) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        self._channel.close()
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for entry in pending:
            entry.failure = failure
            entry.event.set()
        if self._on_close is not None:
            self._on_close(self)

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"<Connection to {self.peer_id} ({state})>"
