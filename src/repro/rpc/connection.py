"""A live connection between two spaces.

After the HELLO/HELLO_ACK handshake the connection is symmetric: each
side allocates its own call ids, keeps its own pending-call table, and
serves whatever requests the peer sends.  One daemon reader thread per
connection decodes envelopes only: replies complete a pending call on
the issuer's thread, requests go to the space's dispatcher.  Argument
and result pickles are *not* decoded on the reader thread — blocking
work (including nested dirty calls triggered by unpickling) happens in
the thread that owns the call.
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable, Optional

from repro.errors import CallTimeout, CommFailure, ProtocolError
from repro.rpc import messages
from repro.rpc.dispatcher import Dispatcher
from repro.transport.base import Channel
from repro.wire.framing import BufferPool, finish_frame
from repro.wire.ids import SpaceID

#: Default per-call deadline, generous enough for loaded CI machines.
DEFAULT_CALL_TIMEOUT = 30.0


#: Recycled pending-call slots kept per connection.  Bounds the free
#: list so a burst of concurrent callers doesn't pin Events forever.
_MAX_FREE_PENDING = 8


class _PendingCall:
    """One awaited reply slot.  Instances are recycled: an Event (and
    its internal Condition/lock) is three allocations per call we can
    avoid on the null-call hot path.  Recycling is only safe because
    completion happens *under* the connection's pending lock — once a
    caller holding that lock finds the slot absent from the table, the
    completer is guaranteed to be entirely done with it."""

    __slots__ = ("event", "reply", "failure")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.reply: Optional[messages.Message] = None
        self.failure: Optional[Exception] = None

    def reset(self) -> None:
        self.event.clear()
        self.reply = None
        self.failure = None


class Connection:
    """One handshaken channel plus its reader thread."""

    def __init__(
        self,
        channel: Channel,
        local_id: SpaceID,
        dispatcher: Dispatcher,
        handle_request: Callable[["Connection", messages.Message], None],
        on_close: Optional[Callable[["Connection"], None]] = None,
        outbound: bool = True,
        handshake_timeout: float = 10.0,
    ):
        self._channel = channel
        self._local_id = local_id
        self._dispatcher = dispatcher
        self._handle_request = handle_request
        self._on_close = on_close
        self._pending: dict[int, _PendingCall] = {}
        self._pending_lock = threading.Lock()
        self._pending_free: list[_PendingCall] = []
        self._call_ids = itertools.count(1)
        self._closed = threading.Event()
        self._send_buffers = BufferPool()
        self.peer_id: Optional[SpaceID] = None
        #: Slot for the owning space's per-connection codec context
        #: (set lazily by Space; the connection itself never reads it).
        self.marshal_ctx: Optional[object] = None

        self._handshake(outbound, handshake_timeout)
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"conn-reader-{self.peer_id}",
            daemon=True,
        )
        self._reader.start()

    # -- handshake ------------------------------------------------------------

    def _handshake(self, outbound: bool, timeout: float) -> None:
        hello = messages.Hello(self._local_id, self._local_id.nickname)
        ack = messages.HelloAck(self._local_id, self._local_id.nickname)
        try:
            if outbound:
                self.send(hello)
                reply = self._expect_handshake(messages.HelloAck, timeout)
            else:
                reply = self._expect_handshake(messages.Hello, timeout)
                self.send(ack)
        except CommFailure:
            self._channel.close()
            raise
        if reply.version != hello.version:
            self._channel.close()
            raise ProtocolError(
                f"protocol version mismatch: ours {hello.version}, "
                f"peer {reply.version}"
            )
        self.peer_id = reply.space_id

    def _expect_handshake(self, expected_type, timeout: float):
        frame = self._channel.recv(timeout=timeout)
        if frame is None:
            raise CommFailure("peer closed during handshake")
        message = messages.decode(memoryview(frame))
        if not type(message) is expected_type:
            raise ProtocolError(
                f"expected {expected_type.__name__} during handshake, "
                f"got {type(message).__name__}"
            )
        return message

    # -- outgoing traffic -------------------------------------------------------

    def next_call_id(self) -> int:
        return next(self._call_ids)

    # Frame buffers: ``new_send_buffer`` hands out a pooled bytearray
    # with the 4 length-prefix bytes reserved; callers append the
    # message (envelope + pickle) in place and pass it to
    # ``send_buffer``/``call_buffer``, which patch the length, hand the
    # channel the single buffer, and return it to the pool.  A caller
    # that fails before sending must ``discard_send_buffer`` it.

    def new_send_buffer(self) -> bytearray:
        return self._send_buffers.acquire()

    def discard_send_buffer(self, buffer: bytearray) -> None:
        self._send_buffers.release(buffer)

    def send_buffer(self, buffer: bytearray) -> None:
        """Finish and transmit a frame built in ``new_send_buffer``.

        Takes ownership of ``buffer`` — it goes back to the pool
        whether the send succeeds or not.
        """
        try:
            if self._closed.is_set():
                raise CommFailure("connection closed")
            self._channel.send_framed(finish_frame(buffer))
        finally:
            self._send_buffers.release(buffer)

    def send(self, message: messages.Message) -> None:
        """Fire-and-forget send (results, acks, one-way GC messages)."""
        buffer = self.new_send_buffer()
        try:
            message.encode_into(buffer)
        except BaseException:
            self.discard_send_buffer(buffer)
            raise
        self.send_buffer(buffer)

    def call(
        self,
        message: messages.Message,
        timeout: float = DEFAULT_CALL_TIMEOUT,
    ) -> messages.Message:
        """Send a request carrying ``message.call_id``; await its reply."""
        buffer = self.new_send_buffer()
        try:
            message.encode_into(buffer)
        except BaseException:
            self.discard_send_buffer(buffer)
            raise
        return self.call_buffer(message.call_id, buffer, timeout)

    def call_buffer(
        self,
        call_id: int,
        buffer: bytearray,
        timeout: float = DEFAULT_CALL_TIMEOUT,
    ) -> messages.Message:
        """Send a pre-built request frame; await the matching reply.

        Takes ownership of ``buffer`` (see :meth:`send_buffer`).
        """
        with self._pending_lock:
            if self._closed.is_set():
                self._send_buffers.release(buffer)
                raise CommFailure("connection closed")
            free = self._pending_free
            pending = free.pop() if free else _PendingCall()
            self._pending[call_id] = pending
        try:
            self.send_buffer(buffer)
        except CommFailure:
            with self._pending_lock:
                self._pending.pop(call_id, None)
                self._recycle(pending)
            raise
        if not pending.event.wait(timeout):
            with self._pending_lock:
                # Either we pop the slot here, or the completer already
                # did — and completion runs under this lock, so once we
                # hold it the slot is exclusively ours to recycle.
                self._pending.pop(call_id, None)
                self._recycle(pending)
            raise CallTimeout(
                f"no reply to call {call_id} within {timeout:.1f}s"
            )
        reply, failure = pending.reply, pending.failure
        with self._pending_lock:
            self._recycle(pending)
        if failure is not None:
            raise failure
        assert reply is not None
        return reply

    def _recycle(self, pending: _PendingCall) -> None:
        """Return a pending slot to the free list.  Caller must hold
        ``_pending_lock`` and must be the slot's sole owner."""
        pending.reset()
        if len(self._pending_free) < _MAX_FREE_PENDING:
            self._pending_free.append(pending)

    # -- incoming traffic -------------------------------------------------------

    def _read_loop(self) -> None:
        failure: Exception = CommFailure("connection closed by peer")
        try:
            while not self._closed.is_set():
                frame = self._channel.recv()
                if frame is None:
                    break
                try:
                    # memoryview: a decoded Call/Result's pickle is a
                    # zero-copy slice of the frame buffer.
                    message = messages.decode(memoryview(frame))
                except Exception as exc:  # corrupt frame: drop connection
                    failure = ProtocolError(f"undecodable frame: {exc}")
                    break
                if isinstance(message, messages.Bye):
                    break
                if message.tag in messages.REPLY_TAGS:
                    self._complete(message)
                else:
                    self._dispatcher.submit(
                        lambda m=message: self._handle_request(self, m)
                    )
        except CommFailure as exc:
            failure = exc
        finally:
            self._teardown(failure)

    def _complete(self, reply: messages.Message) -> None:
        # Fields are set and the event raised *under* the lock: slot
        # recycling in ``call_buffer`` depends on completion being
        # atomic with respect to the pending table.
        with self._pending_lock:
            pending = self._pending.pop(reply.call_id, None)
            if pending is not None:
                pending.reply = reply
                pending.event.set()
        # Replies to calls we gave up on (timeout) are dropped silently.

    # -- teardown -------------------------------------------------------------

    def close(self, notify_peer: bool = True) -> None:
        if self._closed.is_set():
            return
        if notify_peer:
            try:
                self.send(messages.Bye())
            except CommFailure:
                pass
        self._channel.close()
        self._teardown(CommFailure("connection closed locally"))

    def _teardown(self, failure: Exception) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        self._channel.close()
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
            self._pending_free.clear()
            for entry in pending:
                entry.failure = failure
                entry.event.set()
        if self._on_close is not None:
            self._on_close(self)

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"<Connection to {self.peer_id} ({state})>"
