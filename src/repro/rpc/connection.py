"""A live connection between two spaces.

After the HELLO/HELLO_ACK handshake the connection is symmetric: each
side allocates its own call ids, keeps its own pending-call table, and
serves whatever requests the peer sends.  Incoming frames arrive via
the :class:`~repro.transport.reactor.FrameSink` callbacks
(:meth:`Connection.on_frame` / :meth:`Connection.on_closed`) — from
the space's shared reactor thread for selectable channels, from a
per-connection :class:`~repro.transport.reactor.ChannelPump` bridge
otherwise.  Either way the delivering thread decodes envelopes only:
replies complete a pending call on the issuer's thread, requests go to
the space's dispatcher.  Argument and result pickles are *not* decoded
on the delivering thread — blocking work (including nested dirty calls
triggered by unpickling) happens in the thread that owns the call.

Calls come in two shapes over the same call-id multiplexing:

* ``call_buffer``/``call`` — the classic blocking RPC: send, park the
  calling thread, return the reply.  Implemented on the same machinery
  as the async path, with the future slot recycled afterwards.
* ``call_buffer_async``/``call_async`` — pipelined: send and return a
  :class:`~repro.rpc.futures.CallFuture` immediately, so one thread
  can keep hundreds of calls in flight per connection.

The handshake negotiates the protocol version down to
``min(ours, peer's)`` (floor :data:`~repro.wire.protocol.MIN_PROTOCOL_VERSION`),
so a v5 runtime interoperates with a v2, v3 or v4 peer — in either
dial direction — by never sending the newer frames (``CLEAN_BATCH`` is
v3; the read-lease frames ``LEASE_REQ`` .. ``LEASE_INVALIDATE_ACK``
are v4; the call-fast-lane frames ``CALL_BIND`` .. ``RESULT_FAST`` are
v5).  The HELLO's legacy version field announces our floor, which a
genuine pre-negotiation v2 peer accepts under its strict equality
check; the real maximum rides in a trailing extension field old
decoders ignore (see :class:`~repro.rpc.messages.Hello`).  The agreed
version is ``self.version``.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Callable, Optional

from repro.errors import CommFailure, ConnectionClosed, ProtocolError, ServerBusy
from repro.rpc import messages
from repro.rpc.admission import AdmissionController
from repro.rpc.dispatcher import Dispatcher
from repro.rpc.futures import CallFuture
from repro.transport.base import Channel, SelectableChannel
from repro.transport.reactor import ChannelPump, Reactor
from repro.wire import protocol
from repro.wire.framing import BufferPool, finish_frame
from repro.wire.ids import SpaceID

#: Default per-call deadline, generous enough for loaded CI machines.
DEFAULT_CALL_TIMEOUT = 30.0

#: How long an orderly close waits for corked output to hit the wire
#: before half-closing.  Short: the backlog is at most a few frames.
DEFAULT_FLUSH_TIMEOUT = 1.0


#: Recycled pending-call future slots kept per connection.  Bounds the
#: free list so a burst of concurrent callers doesn't pin Events
#: forever.  Only the blocking path recycles: a future handed out by
#: ``call_buffer_async`` belongs to its caller.
_MAX_FREE_PENDING = 8

#: The collector's control plane.  These frames are *bounded* by the
#: per-connection inflight gauge (reads pause) but never *refused* by
#: the queue cap, rate bucket, or bulkheads: refusing a DIRTY/CLEAN
#: would break the reference-listing invariants, and refusing a PING
#: makes a busy-but-live client look dead to the pinger (which would
#: then purge its dirty entries — a GC-safety violation, not a
#: liveness hiccup).  The plane is low-rate and seqno-guarded, so the
#: exemption cannot be used to flood past admission.
_GC_PLANE_TAGS = frozenset({
    protocol.DIRTY, protocol.CLEAN, protocol.CLEAN_BATCH, protocol.PING,
})

#: Request tags whose *pre-v6* reply handlers digest a FAULT: the call
#: plane raises it as RemoteError, and a LEASE_REQ caller treats any
#: non-grant reply as a per-RPC fallback.  Every other pre-v6 plane
#: asserts on its expected ack type, so a shed there must be answered
#: by silence (the peer's own timeout/retry machinery recovers).
_FAULT_OK_TAGS = frozenset({
    protocol.CALL, protocol.CALL_BIND, protocol.CALL_BOUND,
    protocol.CALL_FAST, protocol.LEASE_REQ,
})


class Connection:
    """One handshaken channel, fed frames by the space's reactor.

    The handshake itself is synchronous on the constructing thread
    (dialer thread outbound, the listener's on-connect thread inbound);
    only after version negotiation does the channel join the event
    machinery.  With a ``reactor``, a selectable channel goes
    nonblocking under the shared selector thread and anything else gets
    a :class:`ChannelPump` bridge; without one (standalone use, as in
    the protocol-level tests) a private pump reproduces the classic
    reader-thread arrangement.
    """

    def __init__(
        self,
        channel: Channel,
        local_id: SpaceID,
        dispatcher: Dispatcher,
        handle_request: Callable[["Connection", messages.Message], None],
        on_close: Optional[Callable[["Connection"], None]] = None,
        outbound: bool = True,
        handshake_timeout: float = 10.0,
        max_version: int = protocol.PROTOCOL_VERSION,
        reactor: Optional[Reactor] = None,
        inline_handler: Optional[
            Callable[["Connection", messages.Message], bool]
        ] = None,
        profile=None,
        admission: Optional[AdmissionController] = None,
    ):
        self._channel = channel
        self._local_id = local_id
        self._dispatcher = dispatcher
        self._handle_request = handle_request
        self._on_close = on_close
        self._max_version = max_version
        self._pending: dict[int, CallFuture] = {}
        self._pending_lock = threading.Lock()
        self._pending_free: list[CallFuture] = []
        self._call_ids = itertools.count(1)
        self._closed = threading.Event()
        self._closing = False  # set under _pending_lock; rejects new calls
        self._send_buffers = BufferPool()
        self._reactor = reactor
        self._inline_handler = inline_handler
        self._profile = profile
        # v5 method-id interning tables (see PROTOCOL.md, "Protocol
        # version 5").  Each direction allocates its own ids, exactly
        # like call ids, so the two never collide.
        #: Our outbound bindings: ``(wirerep, method)`` -> method id the
        #: peer has *confirmed* (the CALL_BIND frame reached the wire).
        self.method_ids: dict = {}
        #: The peer's bindings: method id -> whatever the owning
        #: space's request handler registered at CALL_BIND time.
        self.bound_methods: dict = {}
        self._method_ids = itertools.count(1)
        #: Reactor shard index this connection's frames arrive on; set
        #: at registration, routes request dispatch to that shard's
        #: local deque.  None = unsharded (standalone / pre-register).
        self._shard: Optional[int] = None
        #: True when the close was a negotiated goodbye (Bye/EOF seen or
        #: sent) rather than a failure — CommFailure diagnostics only.
        self.orderly = False
        #: Protocol version agreed at HELLO (set by ``_handshake``).
        self.version: int = max_version
        self.peer_id: Optional[SpaceID] = None
        #: Slot for the owning space's per-connection codec context
        #: (set lazily by Space; the connection itself never reads it).
        self.marshal_ctx: Optional[object] = None
        #: The endpoint this connection was dialed to (set by
        #: ConnectionCache.get); lets BUSY replies demote the endpoint
        #: in multi-endpoint health ordering.  None for inbound.
        self.endpoint: Optional[str] = None
        #: Read-throttle gate for pumped (non-selectable) transports:
        #: cleared = pump parked, set = frames flow.  Read by
        #: ``Reactor.register`` when it builds the ChannelPump.
        self.recv_gate = threading.Event()
        self.recv_gate.set()
        self._admission = admission
        #: Per-connection credit account; assigned after registration,
        #: so the first few frames of a very fast peer may slip past
        #: admission — a benign, bounded slip.
        self._gauge = None

        self._handshake(outbound, handshake_timeout)
        if admission is not None \
                and admission.config.write_backlog_max is not None:
            channel.write_backlog_limit = admission.config.write_backlog_max
            channel.on_backlog_overflow = \
                lambda: admission.count("backlog_sheds")
        if reactor is not None and reactor.alive:
            # ``register`` returns the concrete reactor — the chosen
            # shard when ``reactor`` is a ReactorPool — so send-side
            # counters and dispatch affinity follow the right shard.
            self._reactor = reactor.register(
                channel, self, name=f"conn-{self.peer_id}"
            )
            self._shard = getattr(self._reactor, "index", None)
        else:
            # Standalone (no space/reactor): a private pump keeps the
            # old one-reader-per-connection behaviour for direct users.
            self._reactor = None
            ChannelPump(
                channel, self, name=f"conn-reader-{self.peer_id}",
                gate=self.recv_gate,
            ).start()
        if admission is not None:
            if self._reactor is not None \
                    and isinstance(channel, SelectableChannel):
                # Late-bound: self._reactor is the concrete shard here.
                shard = self._reactor
                pause = lambda: shard.pause_read(channel)   # noqa: E731
                resume = lambda: shard.resume_read(channel)  # noqa: E731
            else:
                pause = self.recv_gate.clear
                resume = self.recv_gate.set
            self._gauge = admission.attach(pause, resume)

    # -- handshake ------------------------------------------------------------

    def _handshake(self, outbound: bool, timeout: float) -> None:
        """HELLO/HELLO_ACK exchange with downward version negotiation.

        Both frames carry two versions: the legacy ``version`` field,
        which pre-negotiation (v2) peers check with strict equality,
        and the trailing ``max_version`` extension those peers ignore.
        We announce our floor in the legacy field — so a genuine v2
        acceptor sees exactly the HELLO it expects and interops at v2
        in *either* dial direction — and negotiate the real version as
        ``min(peer max, our max)`` from the extension (absent trailing
        bytes mean a v2 peer, whose max is its legacy field).

        The acceptor replies even when it is about to reject a
        below-floor peer, so that peer fails fast with a version error
        instead of timing out on a silently closed channel.
        """
        mine = self._max_version
        base = min(mine, protocol.MIN_PROTOCOL_VERSION)
        try:
            if outbound:
                self.send(messages.Hello(
                    self._local_id, self._local_id.nickname, base, mine
                ))
                reply = self._expect_handshake(messages.HelloAck, timeout)
                agreed = min(reply.max_version, mine)
            else:
                reply = self._expect_handshake(messages.Hello, timeout)
                agreed = min(reply.max_version, mine)
                self.send(messages.HelloAck(
                    self._local_id, self._local_id.nickname,
                    min(agreed, base), agreed
                ))
        except CommFailure:
            self._channel.close()
            raise
        if agreed < protocol.MIN_PROTOCOL_VERSION:
            self._channel.close()
            raise ProtocolError(
                f"no common protocol version: ours {mine}, "
                f"peer announced {reply.max_version}"
            )
        self.version = agreed
        self.peer_id = reply.space_id

    def _expect_handshake(self, expected_type, timeout: float):
        frame = self._channel.recv(timeout=timeout)
        if frame is None:
            raise CommFailure("peer closed during handshake")
        message = messages.decode(memoryview(frame))
        if not type(message) is expected_type:
            raise ProtocolError(
                f"expected {expected_type.__name__} during handshake, "
                f"got {type(message).__name__}"
            )
        return message

    # -- outgoing traffic -------------------------------------------------------

    def next_call_id(self) -> int:
        return next(self._call_ids)

    def next_method_id(self) -> int:
        """Allocate an outbound method id (v5 interning).  Ids are
        never reused; a racing duplicate bind for the same method is
        harmless — the peer registers both ids and ``method_ids``
        settles on whichever publishes first."""
        return next(self._method_ids)

    # Frame buffers: ``new_send_buffer`` hands out a pooled bytearray
    # with the 4 length-prefix bytes reserved; callers append the
    # message (envelope + pickle) in place and pass it to
    # ``send_buffer``/``call_buffer``, which patch the length, hand the
    # channel the single buffer, and return it to the pool.  A caller
    # that fails before sending must ``discard_send_buffer`` it.

    def new_send_buffer(self) -> bytearray:
        return self._send_buffers.acquire()

    def discard_send_buffer(self, buffer: bytearray) -> None:
        self._send_buffers.release(buffer)

    def send_buffer(self, buffer: bytearray) -> None:
        """Finish and transmit a frame built in ``new_send_buffer``.

        Takes ownership of ``buffer`` — it goes back to the pool
        whether the send succeeds or not.
        """
        try:
            if self._closed.is_set():
                raise ConnectionClosed("connection closed")
            profile = self._profile
            if profile is None:
                self._channel.send_framed(finish_frame(buffer))
            else:
                start = time.perf_counter_ns()
                self._channel.send_framed(finish_frame(buffer))
                profile.syscall_ns += time.perf_counter_ns() - start
                profile.syscall_calls += 1
            if self._reactor is not None:
                self._reactor.frames_out += 1
        finally:
            self._send_buffers.release(buffer)

    def send(self, message: messages.Message) -> None:
        """Fire-and-forget send (results, acks, one-way GC messages)."""
        buffer = self.new_send_buffer()
        try:
            message.encode_into(buffer)
        except BaseException:
            self.discard_send_buffer(buffer)
            raise
        self.send_buffer(buffer)

    def call(
        self,
        message: messages.Message,
        timeout: float = DEFAULT_CALL_TIMEOUT,
    ) -> messages.Message:
        """Send a request carrying ``message.call_id``; await its reply."""
        buffer = self.new_send_buffer()
        try:
            message.encode_into(buffer)
        except BaseException:
            self.discard_send_buffer(buffer)
            raise
        return self.call_buffer(message.call_id, buffer, timeout)

    def call_async(self, message: messages.Message) -> CallFuture:
        """Send a request carrying ``message.call_id``; return a
        :class:`CallFuture` for its reply without blocking."""
        buffer = self.new_send_buffer()
        try:
            message.encode_into(buffer)
        except BaseException:
            self.discard_send_buffer(buffer)
            raise
        return self.call_buffer_async(message.call_id, buffer)

    def call_buffer_async(self, call_id: int, buffer: bytearray) -> CallFuture:
        """Send a pre-built request frame; return its reply future.

        Takes ownership of ``buffer`` (see :meth:`send_buffer`).  The
        future completes on the reader thread when the reply frame
        arrives, or with CommFailure if the connection dies first.
        Raises CommFailure synchronously if the send itself fails.
        """
        future = CallFuture(self, call_id)
        with self._pending_lock:
            if self._closed.is_set() or self._closing:
                self._send_buffers.release(buffer)
                raise ConnectionClosed("connection closed")
            self._pending[call_id] = future
        try:
            self.send_buffer(buffer)
        except BaseException:
            # Not just CommFailure: a ProtocolError (oversize frame)
            # must also unregister, or the dead slot pins the
            # connection against idle reaping forever.
            with self._pending_lock:
                self._pending.pop(call_id, None)
            raise
        return future

    def call_buffer(
        self,
        call_id: int,
        buffer: bytearray,
        timeout: float = DEFAULT_CALL_TIMEOUT,
    ) -> messages.Message:
        """Send a pre-built request frame; await the matching reply.

        The blocking path: ``call_buffer_async(...).result(timeout)``
        on a recycled future slot — an Event (with its internal
        Condition and lock) is three allocations per call we avoid on
        the null-call hot path.  Recycling is safe because every way a
        future completes (reply, teardown, timed-out wait) does so
        under ``_pending_lock`` with the slot already out of the
        pending table, making this thread the slot's sole owner again.

        Takes ownership of ``buffer`` (see :meth:`send_buffer`).
        """
        with self._pending_lock:
            if self._closed.is_set() or self._closing:
                self._send_buffers.release(buffer)
                raise ConnectionClosed("connection closed")
            free = self._pending_free
            if free:
                future = free.pop()
                future.call_id = call_id
            else:
                future = CallFuture(self, call_id)
            self._pending[call_id] = future
        try:
            self.send_buffer(buffer)
        except BaseException:
            # See call_buffer_async: any send failure unregisters.
            with self._pending_lock:
                self._pending.pop(call_id, None)
                self._recycle(future)
            raise
        try:
            return future.result(timeout)
        finally:
            with self._pending_lock:
                self._recycle(future)

    def _recycle(self, future: CallFuture) -> None:
        """Return a blocking-path future to the free list.  Caller must
        hold ``_pending_lock`` and must be the slot's sole owner."""
        future._reset()
        if len(self._pending_free) < _MAX_FREE_PENDING:
            self._pending_free.append(future)

    # -- incoming traffic (FrameSink protocol) ----------------------------------
    #
    # Called on the reactor thread (selectable channels) or a pump
    # thread (everything else).  Neither callback may block: envelope
    # decode, pending-table completion, and dispatcher hand-off only.

    def on_frame(self, frame) -> None:
        profile = self._profile
        start = time.perf_counter_ns() if profile is not None else 0
        try:
            # memoryview: a decoded Call/Result's pickle is a
            # zero-copy slice of the frame buffer.
            message = messages.decode(memoryview(frame))
        except Exception as exc:  # corrupt frame: drop connection
            self._channel.close()
            self._teardown(ProtocolError(f"undecodable frame: {exc}"))
            return
        if isinstance(message, messages.Bye):
            self.orderly = True
            self._channel.close()
            self._teardown(CommFailure("connection closed by peer"))
            return
        if profile is not None:
            # Envelope decode + routing only: inline execution below is
            # user code and accounts itself in the space's buckets.
            profile.reactor_ns += time.perf_counter_ns() - start
            profile.reactor_calls += 1
        if message.tag in messages.REPLY_TAGS:
            self._complete(message)
            return
        # Admission: charge the frame against this connection's credit
        # budget before any work is queued for it.  Rate policing sheds
        # here; inflight-budget exhaustion pauses reads instead (the
        # gauge's pause callback) — invisible to a well-behaved peer.
        gauge = self._gauge
        gc_plane = message.tag in _GC_PLANE_TAGS
        nbytes = 0
        if gauge is not None:
            nbytes = len(frame)
            reason = gauge.admit(nbytes, police=not gc_plane)
            if reason is not None:
                self._shed(message, reason, "shed_rate")
                return
        # The v5 inline fast lane: let the owning space run a bound
        # typed call right here on the delivering thread (budgeted —
        # see Reactor.try_acquire_inline).  False means "dispatch
        # normally"; the handler itself never blocks unboundedly.
        inline = self._inline_handler
        if inline is not None and inline(self, message):
            if gauge is not None:
                gauge.release(nbytes)
            return
        admission = self._admission
        bkey = None
        if gauge is not None and not gc_plane \
                and admission.config.bulkhead_quota is not None:
            bkey = self._bulkhead_key(message)
            if bkey is not None and not admission.bulkhead_enter(bkey):
                gauge.release(nbytes)
                self._shed(message, "target quota", "shed_bulkhead")
                return
        if profile is None:
            base_task = lambda m=message: self._handle_request(self, m)  # noqa: E731
        else:
            submitted = time.perf_counter_ns()

            def base_task(m=message):
                profile.dispatch_ns += time.perf_counter_ns() - submitted
                profile.dispatch_calls += 1
                self._handle_request(self, m)

        if gauge is None:
            # No credit account (admission off, or a frame that raced
            # ahead of gauge attachment): skip the charging, never the
            # refusal — a dropped request would strand the caller
            # until its timeout.
            if not self._dispatcher.submit(base_task, shard=self._shard,
                                           force=gc_plane):
                self._shed(message, "queue full", "shed_queue")
            return

        def task(inner=base_task):
            try:
                inner()
            finally:
                gauge.release(nbytes)
                if bkey is not None:
                    admission.bulkhead_leave(bkey)

        call_id = getattr(message, "call_id", None)
        tag = message.tag

        def on_shed():
            # Fired by a draining shutdown for queued-but-unstarted
            # tasks: credit back and answer BUSY so a waiting caller
            # fails fast instead of timing out against a dead space.
            gauge.release(nbytes)
            if bkey is not None:
                admission.bulkhead_leave(bkey)
            admission.count("shed_shutdown")
            self._send_shed_reply(call_id, "shutting down", tag)

        task.on_shed = on_shed
        if not self._dispatcher.submit(task, shard=self._shard,
                                       force=gc_plane):
            gauge.release(nbytes)
            if bkey is not None:
                admission.bulkhead_leave(bkey)
            self._shed(message, "queue full", "shed_queue")

    def on_closed(self, failure: Optional[Exception]) -> None:
        if failure is None:
            self.orderly = True
            failure = CommFailure("connection closed by peer")
        self._teardown(failure)

    def _bulkhead_key(self, message: messages.Message):
        """The per-target quota bucket a request counts against: the
        wireRep for classic envelopes, the (connection, method id)
        pair for bound/fast calls whose target lives in the binding."""
        target = getattr(message, "target", None)
        if target is not None:
            return target
        method_id = getattr(message, "method_id", None)
        if method_id is not None:
            return (id(self), method_id)
        return None

    def _shed(self, message: messages.Message, reason: str,
              counter: str) -> None:
        """Refuse ``message``: count it and answer BUSY (or the FAULT
        fallback) when the request carries a call id."""
        admission = self._admission
        if admission is not None:
            admission.count(counter)
        self._send_shed_reply(getattr(message, "call_id", None), reason,
                              message.tag)

    def _send_shed_reply(self, call_id: Optional[int], reason: str,
                         tag: Optional[int] = None) -> None:
        if call_id is None:
            return  # a one-way message is shed by silence
        config = self._admission.config if self._admission is not None \
            else None
        retry_ms = config.retry_after_ms if config is not None else 50
        try:
            if self.version >= protocol.BUSY_VERSION:
                self.send(messages.Busy(call_id, reason, retry_ms))
            elif tag is None or tag in _FAULT_OK_TAGS:
                # Pre-v6 peers would tear the connection down on an
                # unknown tag; FAULT has existed since the floor and
                # our own clients map kind "ServerBusy" back to the
                # same exception (see ``_complete``).
                self.send(messages.Fault(call_id, "ServerBusy", reason, ""))
            # else: a pre-v6 plane whose reply handler expects exactly
            # its ack type (dirty/clean-batch assert on it) — shed by
            # silence and let the peer's retry machinery recover.
        except CommFailure:
            pass

    def _complete(self, reply: messages.Message) -> None:
        # Fields are set and the event raised *under* the lock: slot
        # recycling in ``call_buffer`` depends on completion being
        # atomic with respect to the pending table.  Done callbacks run
        # after the lock is released (they may issue new calls).
        #
        # Shed notices — BUSY frames, or their FAULT fallback from a
        # peer that negotiated below v6 — complete the future with a
        # ServerBusy *failure* here, in the one place both blocking
        # and async callers converge.
        failure: Optional[Exception] = None
        rtype = type(reply)
        if rtype is messages.Busy:
            failure = ServerBusy(reply.reason, reply.retry_after_ms / 1000.0)
        elif rtype is messages.Fault and reply.kind == "ServerBusy":
            failure = ServerBusy(reply.message or "server busy")
        if failure is not None and self._admission is not None:
            self._admission.count("busy_received")
        with self._pending_lock:
            future = self._pending.pop(reply.call_id, None)
            if future is None:
                return  # reply to an abandoned call; dropped silently
            if failure is None:
                callbacks = future._complete(reply, None)
            else:
                callbacks = future._complete(None, failure)
        future._run_callbacks(callbacks)

    # -- teardown -------------------------------------------------------------

    def close(self, notify_peer: bool = True) -> None:
        if self._closed.is_set():
            return
        if notify_peer:
            try:
                self.send(messages.Bye())
                # The Bye may still sit in a nonblocking transport's
                # cork; give it a moment to reach the wire before the
                # close below discards the backlog.
                self._channel.flush(DEFAULT_FLUSH_TIMEOUT)
            except CommFailure:
                pass
        self._channel.close()
        self._teardown(CommFailure("connection closed locally"))

    def begin_close(
        self, flush_timeout: float = DEFAULT_FLUSH_TIMEOUT
    ) -> None:
        """Start an orderly goodbye: refuse new calls, send Bye, flush
        buffered output, then half-close so the peer reads our Bye and
        a clean end-of-stream instead of a reset that may destroy
        frames in flight.  Full teardown completes when the peer's
        answering close arrives (``await_closed``); callers that cannot
        wait may follow up with :meth:`close`.
        """
        with self._pending_lock:
            if self._closed.is_set() or self._closing:
                return
            self._closing = True
        self._send_goodbye(flush_timeout)

    def await_closed(self, timeout: Optional[float] = None) -> bool:
        """Wait for teardown to finish; True once closed."""
        return self._closed.wait(timeout)

    def try_close_idle(
        self, flush_timeout: float = DEFAULT_FLUSH_TIMEOUT
    ) -> bool:
        """Orderly-close the connection iff no calls are in flight.

        The idle-reaper's entry point: the pending-table check and the
        switch to the call-refusing ``_closing`` state are atomic under
        ``_pending_lock``, so a call racing this either lands in the
        table first (we return False, connection stays) or arrives
        after and gets the same CommFailure any closed connection
        gives.  Returns True when a close was initiated (or the
        connection was already closed/closing).
        """
        with self._pending_lock:
            if self._closed.is_set() or self._closing:
                return True
            if self._pending:
                return False
            self._closing = True
        self._send_goodbye(flush_timeout)
        return True

    def _send_goodbye(self, flush_timeout: float) -> None:
        self.orderly = True
        try:
            self.send(messages.Bye())
        except CommFailure:
            self.close(notify_peer=False)
            return
        self._channel.flush(flush_timeout)
        self._channel.half_close()

    def _teardown(self, failure: Exception) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        # A parked pump must wake to observe the close; a paused gauge
        # must never resume a dead channel.
        self.recv_gate.set()
        if self._gauge is not None:
            self._gauge.close()
        self._channel.close()
        # Method bindings die with the connection (ids are
        # per-connection); drop them eagerly so server-side binding
        # records release their object-table weakrefs now rather than
        # whenever the Connection itself is collected.
        self.method_ids.clear()
        self.bound_methods.clear()
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
            self._pending_free.clear()
            completed = [
                (future, future._complete(None, failure))
                for future in pending
            ]
        for future, callbacks in completed:
            future._run_callbacks(callbacks)
        if self._on_close is not None:
            self._on_close(self)

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    @property
    def closing(self) -> bool:
        """True once an orderly goodbye started; new calls are refused
        (with :class:`ConnectionClosed`) while in-flight ones drain."""
        return self._closing

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"<Connection to {self.peer_id} ({state})>"
