"""Admission control: the credit accounting behind every ingress stage.

The paper's runtime assumed cooperative peers; at scale one slow or
abusive client can pin memory and latency for everyone.  This module
is the single place where "may this frame enter the system?" is
decided, and the single place that counts the outcomes.  The ingress
pipeline it governs:

1. **frame decode** (``Connection.on_frame``) — a per-connection
   token bucket (rate policing) and an inflight frames/bytes budget.
   Exceeding the rate sheds with BUSY; exceeding the inflight budget
   *pauses reads* instead: the reactor drops the connection's read
   interest (or the channel pump parks on a gate), so backpressure
   propagates through TCP flow control rather than through buffering.
2. **dispatcher** — bounded per-shard deques plus a global queue cap
   (queue-based load leveling) and bulkhead-style per-target quotas so
   one hot object cannot occupy every worker.  Overflow sheds with
   BUSY.
3. **write backlog** — the cork that buffers replies toward a
   non-reading peer is capped; overflow aborts the connection with
   :class:`~repro.errors.CommFailure` (a peer that will not read its
   replies cannot be shed politely).

Credits flow one way: ``admit`` charges at decode, ``release`` credits
when the request's task finishes (inline fast-lane calls release
immediately).  When a paused connection drains below the low-water
mark (``resume_ratio``) reads resume.

Lock order: ``_ConnectionGauge._lock`` and
``AdmissionController._lock`` are leaves — nothing else is ever
acquired under them, and they are never held across a callback into
the reactor or dispatcher.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Dict, Hashable, Optional

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "busy_backoff",
    "retry_busy",
]


class AdmissionConfig:
    """Knobs for the ingress pipeline (``Space(admission=...)``).

    ``None`` disables the corresponding budget.  The defaults are
    deliberately generous: ordinary workloads never notice them, only
    floods do.
    """

    __slots__ = (
        "max_inflight_frames", "max_inflight_bytes", "resume_ratio",
        "rate", "burst",
        "max_queued", "shard_queue_max",
        "bulkhead_quota",
        "write_backlog_max",
        "retry_after_ms", "busy_strikes",
    )

    def __init__(
        self,
        *,
        max_inflight_frames: Optional[int] = 512,
        max_inflight_bytes: Optional[int] = 16 * 1024 * 1024,
        resume_ratio: float = 0.5,
        rate: Optional[float] = None,
        burst: Optional[int] = None,
        max_queued: Optional[int] = 4096,
        shard_queue_max: Optional[int] = 1024,
        bulkhead_quota: Optional[int] = None,
        write_backlog_max: Optional[int] = 8 * 1024 * 1024,
        retry_after_ms: int = 50,
        busy_strikes: int = 3,
    ):
        #: Pause reads when this many frames from one connection are
        #: decoded-but-unfinished.
        self.max_inflight_frames = max_inflight_frames
        #: ... or when their payload bytes exceed this.
        self.max_inflight_bytes = max_inflight_bytes
        #: Resume reads when both gauges drop below ratio × budget.
        self.resume_ratio = resume_ratio
        #: Token-bucket refill rate (frames/second) per connection;
        #: ``None`` disables rate policing.
        self.rate = rate
        #: Token-bucket capacity (defaults to ``rate`` when unset).
        self.burst = burst
        #: Global cap on queued-but-unstarted dispatcher tasks.
        self.max_queued = max_queued
        #: Per-shard deque cap; overflow spills to the shared queue.
        self.shard_queue_max = shard_queue_max
        #: Max concurrent+queued requests per target object (bulkhead);
        #: ``None`` disables per-target quotas.
        self.bulkhead_quota = bulkhead_quota
        #: Cap on a connection's buffered unsent reply bytes (the
        #: reactor cork).  Overflow disconnects the slow consumer.
        self.write_backlog_max = write_backlog_max
        #: Backoff hint carried inside BUSY frames, milliseconds.
        self.retry_after_ms = retry_after_ms
        #: Consecutive BUSY replies from one endpoint before the
        #: ConnectionCache demotes it in multi-endpoint ordering.
        self.busy_strikes = busy_strikes


class _ConnectionGauge:
    """Per-connection credit account.

    ``admit``/``release`` are called from the reactor thread (frame
    decode) and from dispatcher workers (task completion), so the
    few integers live under a small leaf lock.  The pause/resume
    callbacks are invoked *outside* the lock and must not block (they
    post to the reactor or flip a pump gate).
    """

    __slots__ = (
        "_controller", "_config", "_lock",
        "_frames", "_bytes", "_paused",
        "_tokens", "_token_stamp",
        "_pause", "_resume", "_closed",
    )

    def __init__(self, controller: "AdmissionController",
                 pause: Callable[[], None], resume: Callable[[], None]):
        self._controller = controller
        self._config = controller.config
        self._lock = threading.Lock()
        self._frames = 0
        self._bytes = 0
        self._paused = False
        config = self._config
        burst = config.burst if config.burst is not None else config.rate
        self._tokens = float(burst or 0)
        self._token_stamp = time.monotonic()
        self._pause = pause
        self._resume = resume
        self._closed = False

    def admit(self, nbytes: int, police: bool = True) -> Optional[str]:
        """Charge one inbound request frame of ``nbytes``.

        Returns ``None`` when admitted, or a shed-reason string when
        the caller must refuse the frame (rate policing).  Exceeding
        the inflight budget never sheds — it pauses reads, which is
        invisible to a well-behaved peer.  ``police=False`` charges
        the inflight budget without consuming a rate token (the GC
        control plane is bounded, never refused).
        """
        config = self._config
        pause = False
        with self._lock:
            if police and config.rate is not None:
                now = time.monotonic()
                burst = config.burst if config.burst is not None \
                    else config.rate
                self._tokens = min(
                    float(burst),
                    self._tokens + (now - self._token_stamp) * config.rate,
                )
                self._token_stamp = now
                if self._tokens < 1.0:
                    # The caller sheds (and counts shed_rate).
                    return "rate limit"
                self._tokens -= 1.0
            self._frames += 1
            self._bytes += nbytes
            if not self._paused and self._over_budget_locked():
                self._paused = True
                pause = True
        self._controller.count("admitted")
        if pause:
            self._controller.count("read_pauses")
            self._pause()
        return None

    def release(self, nbytes: int) -> None:
        """Credit back one admitted frame once its work is done."""
        resume = False
        with self._lock:
            self._frames -= 1
            self._bytes -= nbytes
            if self._paused and not self._closed \
                    and self._below_low_water_locked():
                self._paused = False
                resume = True
        if resume:
            self._controller.count("read_resumes")
            self._resume()

    def close(self) -> None:
        """Drop the gauge: no further resume callbacks will fire."""
        with self._lock:
            self._closed = True

    def _over_budget_locked(self) -> bool:
        config = self._config
        if config.max_inflight_frames is not None \
                and self._frames >= config.max_inflight_frames:
            return True
        return (config.max_inflight_bytes is not None
                and self._bytes >= config.max_inflight_bytes)

    def _below_low_water_locked(self) -> bool:
        config = self._config
        ratio = config.resume_ratio
        if config.max_inflight_frames is not None \
                and self._frames > config.max_inflight_frames * ratio:
            return False
        return not (config.max_inflight_bytes is not None
                    and self._bytes > config.max_inflight_bytes * ratio)


class AdmissionController:
    """One per :class:`~repro.core.space.Space`: hands out gauges,
    arbitrates bulkhead quotas, and aggregates the counters that
    surface as ``Space.stats()["admission"]``."""

    _COUNTERS = (
        "admitted", "shed_rate", "shed_queue", "shed_bulkhead",
        "shed_shutdown", "read_pauses", "read_resumes",
        "backlog_sheds", "busy_received",
    )

    def __init__(self, config: Optional[AdmissionConfig] = None):
        self.config = config if config is not None else AdmissionConfig()
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {name: 0 for name in self._COUNTERS}
        self._bulkhead: Dict[Hashable, int] = {}

    # -- gauges ----------------------------------------------------------

    def attach(self, pause: Callable[[], None],
               resume: Callable[[], None]) -> _ConnectionGauge:
        """Create the credit account for one connection."""
        return _ConnectionGauge(self, pause, resume)

    # -- counters --------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + n

    def stats(self) -> Dict[str, int]:
        with self._lock:
            out = dict(self._counts)
        out["shed"] = (out["shed_rate"] + out["shed_queue"]
                       + out["shed_bulkhead"] + out["shed_shutdown"])
        return out

    # -- bulkhead --------------------------------------------------------

    def bulkhead_enter(self, key: Hashable) -> bool:
        """Reserve a worker slot for ``key``; False when its quota is
        exhausted (the request must be shed)."""
        quota = self.config.bulkhead_quota
        if quota is None:
            return True
        with self._lock:
            active = self._bulkhead.get(key, 0)
            if active >= quota:
                return False
            self._bulkhead[key] = active + 1
        return True

    def bulkhead_leave(self, key: Hashable) -> None:
        with self._lock:
            active = self._bulkhead.get(key, 0)
            if active <= 1:
                self._bulkhead.pop(key, None)
            else:
                self._bulkhead[key] = active - 1


def busy_backoff(retry_after: float, attempt: int) -> float:
    """Jittered exponential backoff for a shed idempotent request.

    ``retry_after`` is the server's hint (seconds); ``attempt`` counts
    from 0.  Full jitter in ``[0.5, 1.5) × hint × 2^attempt``, capped
    at one second so a stale hint cannot stall a caller.
    """
    base = max(retry_after, 0.001) * (1 << attempt)
    return min(base, 1.0) * (0.5 + random.random())


def retry_busy(fn, attempts: int = 3):
    """Run ``fn`` retrying on :class:`~repro.errors.ServerBusy`.

    Only for *idempotent* traffic — ``@reads`` methods, lease
    acquires, seqno-guarded collector cleans.  The final attempt's
    ServerBusy propagates to the caller.
    """
    from repro.errors import ServerBusy

    for attempt in range(attempts):
        try:
            return fn()
        except ServerBusy as busy:
            if attempt == attempts - 1:
                raise
            time.sleep(busy_backoff(busy.retry_after, attempt))
    raise AssertionError("unreachable")
