"""The RPC runtime: connections, dispatch and message codecs.

A connection is symmetric after its handshake: either side may issue
calls and either side may serve them, which is what lets the owner of
an object ping its clients and lets GC traffic flow on the same
channels as method invocations (as in the paper).
"""

from repro.rpc import messages
from repro.rpc.connection import Connection
from repro.rpc.cache import ConnectionCache
from repro.rpc.dispatcher import Dispatcher

__all__ = ["Connection", "ConnectionCache", "Dispatcher", "messages"]
