"""Wire messages of the RPC and GC protocols.

Each message encodes as its tag byte followed by hand-written binary
fields (varints, length-prefixed strings/bytes, wireReps).  We keep
the envelope codecs separate from the pickles so the reader thread can
decode an envelope — and route it — without touching the argument
payload; unpickling happens later, in the thread that owns the call.

Encoding is write-into: every message appends itself to a caller-owned
``bytearray`` via ``encode_into`` (the hot path hands it a pooled frame
buffer with the 4 length-prefix bytes already reserved); ``encode()``
remains as a one-shot convenience wrapper.  ``decode`` accepts any
bytes-like input, and CALL/RESULT carry their pickle as the *trailing*
bytes of the frame — no length prefix — so the sender can stream the
pickle straight into the frame buffer after the envelope, and the
receiver can take a zero-copy ``memoryview`` slice of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import ProtocolError, UnmarshalError
from repro.wire import protocol
from repro.wire.ids import SpaceID
from repro.wire.varint import read_uvarint, write_uvarint
from repro.wire.wirerep import WireRep


def _write_str(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    write_uvarint(out, len(raw))
    out += raw


def _read_str(data, offset: int):
    length, offset = read_uvarint(data, offset)
    end = offset + length
    if end > len(data):
        raise UnmarshalError("truncated string field")
    try:
        return str(data[offset:end], "utf-8"), end
    except UnicodeDecodeError as exc:
        raise UnmarshalError(f"invalid UTF-8 in string field: {exc}") from exc


def _write_bytes(out: bytearray, raw) -> None:
    write_uvarint(out, len(raw))
    out += raw


def _read_bytes(data, offset: int):
    length, offset = read_uvarint(data, offset)
    end = offset + length
    if end > len(data):
        raise UnmarshalError("truncated bytes field")
    return data[offset:end], end


def _trailing(data, offset: int):
    """The frame's trailing bytes as a zero-copy view.

    ``data[offset:]`` on a memoryview is already zero-copy, but on
    ``bytes``/``bytearray`` (standalone decodes, tests, transports
    that hand whole frames around) it *copies* the payload — wrap
    first so the pickle slice is always a view into the frame buffer.
    """
    if type(data) is not memoryview:
        data = memoryview(data)
    return data[offset:]


class _Encodable:
    """One-shot ``encode()`` on top of each message's ``encode_into``."""

    def encode(self) -> bytes:
        out = bytearray()
        self.encode_into(out)
        return bytes(out)


# -- envelope prefix writers (the zero-copy send path) -----------------------
#
# The hot path never materialises a Call/Result object on the way out:
# it writes the envelope prefix into the frame buffer and lets the
# pickler append the payload in place.  ``Call.encode_into`` /
# ``Result.encode_into`` delegate here so there is exactly one
# definition of each envelope.

def encode_call_prefix(out: bytearray, call_id: int, target: WireRep,
                       method: str) -> None:
    """Write a CALL envelope; the args pickle follows as trailing bytes."""
    out.append(protocol.CALL)
    write_uvarint(out, call_id)
    target.to_wire(out)
    _write_str(out, method)


def encode_result_prefix(out: bytearray, call_id: int) -> None:
    """Write a RESULT envelope; the result pickle follows as trailing bytes."""
    out.append(protocol.RESULT)
    write_uvarint(out, call_id)


# -- v5 fast-lane envelope prefix writers -------------------------------------

def encode_bind_call_prefix(out: bytearray, call_id: int, method_id: int,
                            target: WireRep, method: str) -> None:
    """Write a CALL_BIND envelope: the METHOD_BIND announcement
    piggybacked on the first call through a fresh binding.  The args
    pickle follows as trailing bytes."""
    out.append(protocol.CALL_BIND)
    write_uvarint(out, call_id)
    write_uvarint(out, method_id)
    target.to_wire(out)
    _write_str(out, method)


def encode_bound_call_prefix(out: bytearray, call_id: int,
                             method_id: int) -> None:
    """Write a CALL_BOUND envelope; the args pickle follows as
    trailing bytes."""
    out.append(protocol.CALL_BOUND)
    write_uvarint(out, call_id)
    write_uvarint(out, method_id)


def encode_fast_call_prefix(out: bytearray, call_id: int,
                            method_id: int) -> None:
    """Write a CALL_FAST envelope; typed scalar args (see
    :mod:`repro.core.typecodes`) follow as trailing bytes."""
    out.append(protocol.CALL_FAST)
    write_uvarint(out, call_id)
    write_uvarint(out, method_id)


def encode_fast_result_prefix(out: bytearray, call_id: int) -> None:
    """Write a RESULT_FAST envelope; one typed scalar value follows as
    trailing bytes."""
    out.append(protocol.RESULT_FAST)
    write_uvarint(out, call_id)


@dataclass(frozen=True)
class Hello(_Encodable):
    """Handshake: announces protocol versions and the sender's identity.

    ``version`` is the legacy field every peer understands — the
    *base* version the sender is willing to speak, which pre-v3
    implementations compared against their own version with strict
    equality.  ``max_version`` rides as a trailing uvarint those old
    decoders ignore (they stop after the nickname), announcing the
    highest version the sender speaks.  A frame with no trailing bytes
    came from a pre-v3 peer, so its max *is* its ``version``.
    """

    space_id: SpaceID
    nickname: str
    version: int = protocol.PROTOCOL_VERSION
    max_version: int = 0
    tag = protocol.HELLO

    def __post_init__(self) -> None:
        if self.max_version < self.version:
            object.__setattr__(self, "max_version", self.version)

    def encode_into(self, out: bytearray) -> None:
        out.append(self.tag)
        write_uvarint(out, self.version)
        out += self.space_id.to_bytes()
        _write_str(out, self.nickname)
        write_uvarint(out, self.max_version)

    @classmethod
    def decode(cls, data, offset: int) -> "Hello":
        version, offset = read_uvarint(data, offset)
        end = offset + 16
        space_id = SpaceID.from_bytes(data[offset:end])
        nickname, offset = _read_str(data, end)
        space_id = SpaceID(space_id.hi, space_id.lo, nickname)
        if offset < len(data):
            max_version, offset = read_uvarint(data, offset)
        else:
            max_version = version
        return cls(space_id, nickname, version, max_version)


@dataclass(frozen=True)
class HelloAck(Hello):
    tag = protocol.HELLO_ACK


@dataclass(frozen=True)
class Bye(_Encodable):
    """Orderly shutdown notice."""

    tag = protocol.BYE

    def encode_into(self, out: bytearray) -> None:
        out.append(self.tag)

    @classmethod
    def decode(cls, data, offset: int) -> "Bye":
        return cls()


class Call(_Encodable):
    """Method invocation request.  ``args_pickle`` stays opaque here.

    The pickle is the frame's trailing bytes (no length prefix), so a
    decoded Call's ``args_pickle`` is a zero-copy view into the frame
    buffer when the frame arrives as a ``memoryview``.

    A plain ``__slots__`` class rather than a frozen dataclass: one is
    constructed per incoming call, and the frozen-dataclass
    ``object.__setattr__`` dance costs several times a normal init.
    """

    __slots__ = ("call_id", "target", "method", "args_pickle")
    tag = protocol.CALL

    def __init__(self, call_id: int, target: WireRep, method: str,
                 args_pickle) -> None:
        self.call_id = call_id
        self.target = target
        self.method = method
        self.args_pickle = args_pickle

    def __eq__(self, other) -> bool:
        if isinstance(other, Call):
            return (self.call_id == other.call_id
                    and self.target == other.target
                    and self.method == other.method
                    and self.args_pickle == other.args_pickle)
        return NotImplemented

    def __repr__(self) -> str:
        return (f"Call(call_id={self.call_id}, target={self.target}, "
                f"method={self.method!r}, "
                f"args_pickle=<{len(self.args_pickle)} bytes>)")

    def encode_into(self, out: bytearray) -> None:
        encode_call_prefix(out, self.call_id, self.target, self.method)
        out += self.args_pickle

    @classmethod
    def decode(cls, data, offset: int) -> "Call":
        call_id, offset = read_uvarint(data, offset)
        target, offset = WireRep.from_wire(data, offset)
        method, offset = _read_str(data, offset)
        return cls(call_id, target, method, _trailing(data, offset))


class Result(_Encodable):
    """Successful completion of a :class:`Call`.

    Like :class:`Call`, the pickle is the frame's trailing bytes, and
    like it this is a ``__slots__`` class — one per reply.
    """

    __slots__ = ("call_id", "result_pickle")
    tag = protocol.RESULT

    def __init__(self, call_id: int, result_pickle) -> None:
        self.call_id = call_id
        self.result_pickle = result_pickle

    def __eq__(self, other) -> bool:
        if isinstance(other, Result):
            return (self.call_id == other.call_id
                    and self.result_pickle == other.result_pickle)
        return NotImplemented

    def __repr__(self) -> str:
        return (f"Result(call_id={self.call_id}, "
                f"result_pickle=<{len(self.result_pickle)} bytes>)")

    def encode_into(self, out: bytearray) -> None:
        encode_result_prefix(out, self.call_id)
        out += self.result_pickle

    @classmethod
    def decode(cls, data, offset: int) -> "Result":
        call_id, offset = read_uvarint(data, offset)
        return cls(call_id, _trailing(data, offset))


class BindCall(_Encodable):
    """First call through a fresh method binding (protocol v5).

    The METHOD_BIND announcement rides the CALL itself: the frame
    carries the sender-allocated ``method_id`` together with the full
    target wireRep and method name, plus the args pickle as trailing
    bytes.  The receiver resolves the binding once, caches the bound
    method under ``method_id``, and serves the call; every later call
    through the binding is a :class:`BoundCall` or :class:`FastCall`.
    Like call ids, method ids are allocated per direction, so the two
    sides' id spaces never collide.
    """

    __slots__ = ("call_id", "method_id", "target", "method", "args_pickle")
    tag = protocol.CALL_BIND

    def __init__(self, call_id: int, method_id: int, target: WireRep,
                 method: str, args_pickle) -> None:
        self.call_id = call_id
        self.method_id = method_id
        self.target = target
        self.method = method
        self.args_pickle = args_pickle

    def __eq__(self, other) -> bool:
        if isinstance(other, BindCall):
            return (self.call_id == other.call_id
                    and self.method_id == other.method_id
                    and self.target == other.target
                    and self.method == other.method
                    and self.args_pickle == other.args_pickle)
        return NotImplemented

    def __repr__(self) -> str:
        return (f"BindCall(call_id={self.call_id}, "
                f"method_id={self.method_id}, target={self.target}, "
                f"method={self.method!r}, "
                f"args_pickle=<{len(self.args_pickle)} bytes>)")

    def encode_into(self, out: bytearray) -> None:
        encode_bind_call_prefix(out, self.call_id, self.method_id,
                                self.target, self.method)
        out += self.args_pickle

    @classmethod
    def decode(cls, data, offset: int) -> "BindCall":
        call_id, offset = read_uvarint(data, offset)
        method_id, offset = read_uvarint(data, offset)
        target, offset = WireRep.from_wire(data, offset)
        method, offset = _read_str(data, offset)
        return cls(call_id, method_id, target, method, _trailing(data, offset))


class BoundCall(_Encodable):
    """Steady-state bound call (protocol v5): the envelope is just
    ``call_id, method_id`` — no wireRep, no method string — with the
    args pickle trailing."""

    __slots__ = ("call_id", "method_id", "args_pickle")
    tag = protocol.CALL_BOUND

    def __init__(self, call_id: int, method_id: int, args_pickle) -> None:
        self.call_id = call_id
        self.method_id = method_id
        self.args_pickle = args_pickle

    def __eq__(self, other) -> bool:
        if isinstance(other, BoundCall):
            return (self.call_id == other.call_id
                    and self.method_id == other.method_id
                    and self.args_pickle == other.args_pickle)
        return NotImplemented

    def __repr__(self) -> str:
        return (f"BoundCall(call_id={self.call_id}, "
                f"method_id={self.method_id}, "
                f"args_pickle=<{len(self.args_pickle)} bytes>)")

    def encode_into(self, out: bytearray) -> None:
        encode_bound_call_prefix(out, self.call_id, self.method_id)
        out += self.args_pickle

    @classmethod
    def decode(cls, data, offset: int) -> "BoundCall":
        call_id, offset = read_uvarint(data, offset)
        method_id, offset = read_uvarint(data, offset)
        return cls(call_id, method_id, _trailing(data, offset))


class FastCall(_Encodable):
    """Bound call whose arguments are typed scalars (protocol v5).

    ``args_wire`` is the trailing typed-argument encoding of
    :func:`repro.core.typecodes.encode_scalar_args_into` — the pickler
    is bypassed entirely on both sides.
    """

    __slots__ = ("call_id", "method_id", "args_wire")
    tag = protocol.CALL_FAST

    def __init__(self, call_id: int, method_id: int, args_wire) -> None:
        self.call_id = call_id
        self.method_id = method_id
        self.args_wire = args_wire

    def __eq__(self, other) -> bool:
        if isinstance(other, FastCall):
            return (self.call_id == other.call_id
                    and self.method_id == other.method_id
                    and self.args_wire == other.args_wire)
        return NotImplemented

    def __repr__(self) -> str:
        return (f"FastCall(call_id={self.call_id}, "
                f"method_id={self.method_id}, "
                f"args_wire=<{len(self.args_wire)} bytes>)")

    def encode_into(self, out: bytearray) -> None:
        encode_fast_call_prefix(out, self.call_id, self.method_id)
        out += self.args_wire

    @classmethod
    def decode(cls, data, offset: int) -> "FastCall":
        call_id, offset = read_uvarint(data, offset)
        method_id, offset = read_uvarint(data, offset)
        return cls(call_id, method_id, _trailing(data, offset))


class FastResult(_Encodable):
    """Typed scalar completion of a fast-lane call (protocol v5).

    ``value_wire`` is one self-describing typed value
    (:func:`repro.core.typecodes.encode_scalar_result_into`); the
    caller decodes it without touching the unpickler pool.
    """

    __slots__ = ("call_id", "value_wire")
    tag = protocol.RESULT_FAST

    def __init__(self, call_id: int, value_wire) -> None:
        self.call_id = call_id
        self.value_wire = value_wire

    def __eq__(self, other) -> bool:
        if isinstance(other, FastResult):
            return (self.call_id == other.call_id
                    and self.value_wire == other.value_wire)
        return NotImplemented

    def __repr__(self) -> str:
        return (f"FastResult(call_id={self.call_id}, "
                f"value_wire=<{len(self.value_wire)} bytes>)")

    def encode_into(self, out: bytearray) -> None:
        encode_fast_result_prefix(out, self.call_id)
        out += self.value_wire

    @classmethod
    def decode(cls, data, offset: int) -> "FastResult":
        call_id, offset = read_uvarint(data, offset)
        return cls(call_id, _trailing(data, offset))


@dataclass(frozen=True)
class Fault(_Encodable):
    """The remote implementation raised; carried back to the caller."""

    call_id: int
    kind: str
    message: str
    remote_traceback: str
    tag = protocol.FAULT

    def encode_into(self, out: bytearray) -> None:
        out.append(self.tag)
        write_uvarint(out, self.call_id)
        _write_str(out, self.kind)
        _write_str(out, self.message)
        _write_str(out, self.remote_traceback)

    @classmethod
    def decode(cls, data, offset: int) -> "Fault":
        call_id, offset = read_uvarint(data, offset)
        kind, offset = _read_str(data, offset)
        message, offset = _read_str(data, offset)
        remote_traceback, offset = _read_str(data, offset)
        return cls(call_id, kind, message, remote_traceback)


@dataclass(frozen=True)
class Busy(_Encodable):
    """The request was shed under admission control (v6).

    A *reply* frame: it completes the caller's pending future with a
    :class:`~repro.errors.ServerBusy` failure instead of a result.
    ``retry_after_ms`` is the server's backoff hint.  Never emitted to
    a peer whose negotiated version is below
    :data:`~repro.wire.protocol.BUSY_VERSION` — such peers get a FAULT
    with kind ``"ServerBusy"`` instead.
    """

    call_id: int
    reason: str
    retry_after_ms: int
    tag = protocol.BUSY

    def encode_into(self, out: bytearray) -> None:
        out.append(self.tag)
        write_uvarint(out, self.call_id)
        _write_str(out, self.reason)
        write_uvarint(out, self.retry_after_ms)

    @classmethod
    def decode(cls, data, offset: int) -> "Busy":
        call_id, offset = read_uvarint(data, offset)
        reason, offset = _read_str(data, offset)
        retry_after_ms, offset = read_uvarint(data, offset)
        return cls(call_id, reason, retry_after_ms)


@dataclass(frozen=True)
class Dirty(_Encodable):
    """Dirty call: register the sender in the object's dirty set.

    Carries the client's sequence number; the owner only applies an
    operation whose sequence number exceeds the largest seen from that
    client for this object (the paper's out-of-order guard).
    """

    call_id: int
    target: WireRep
    seqno: int
    tag = protocol.DIRTY

    def encode_into(self, out: bytearray) -> None:
        out.append(self.tag)
        write_uvarint(out, self.call_id)
        self.target.to_wire(out)
        write_uvarint(out, self.seqno)

    @classmethod
    def decode(cls, data, offset: int) -> "Dirty":
        call_id, offset = read_uvarint(data, offset)
        target, offset = WireRep.from_wire(data, offset)
        seqno, offset = read_uvarint(data, offset)
        return cls(call_id, target, seqno)


@dataclass(frozen=True)
class DirtyAck(_Encodable):
    """Owner's reply to a dirty call; ``ok`` is False when the object
    is already gone (the client then raises NoSuchObjectError)."""

    call_id: int
    ok: bool
    error: str = ""
    tag = protocol.DIRTY_ACK

    def encode_into(self, out: bytearray) -> None:
        out.append(self.tag)
        write_uvarint(out, self.call_id)
        out.append(1 if self.ok else 0)
        _write_str(out, self.error)

    @classmethod
    def decode(cls, data, offset: int) -> "DirtyAck":
        call_id, offset = read_uvarint(data, offset)
        if offset >= len(data):
            raise UnmarshalError("truncated DirtyAck")
        ok = bool(data[offset])
        error, offset = _read_str(data, offset + 1)
        return cls(call_id, ok, error)


@dataclass(frozen=True)
class Clean(_Encodable):
    """Clean call: remove the sender from the object's dirty set.

    A *strong* clean (paper §2.3) also bumps past any dirty call the
    client believes may have failed, guaranteeing that a late dirty
    arrival cannot resurrect the entry.
    """

    call_id: int
    target: WireRep
    seqno: int
    strong: bool = False
    tag = protocol.CLEAN

    def encode_into(self, out: bytearray) -> None:
        out.append(self.tag)
        write_uvarint(out, self.call_id)
        self.target.to_wire(out)
        write_uvarint(out, self.seqno)
        out.append(1 if self.strong else 0)

    @classmethod
    def decode(cls, data, offset: int) -> "Clean":
        call_id, offset = read_uvarint(data, offset)
        target, offset = WireRep.from_wire(data, offset)
        seqno, offset = read_uvarint(data, offset)
        if offset >= len(data):
            raise UnmarshalError("truncated Clean")
        strong = bool(data[offset])
        return cls(call_id, target, seqno, strong)


@dataclass(frozen=True)
class CleanAck(_Encodable):
    call_id: int
    tag = protocol.CLEAN_ACK

    def encode_into(self, out: bytearray) -> None:
        out.append(self.tag)
        write_uvarint(out, self.call_id)

    @classmethod
    def decode(cls, data, offset: int) -> "CleanAck":
        call_id, offset = read_uvarint(data, offset)
        return cls(call_id)


@dataclass(frozen=True)
class CleanBatch(_Encodable):
    """Several clean calls to one owner in one frame (protocol v3).

    ``entries`` is a tuple of ``(target, seqno, strong)`` triples, each
    with exactly the semantics of a standalone :class:`Clean`.  The
    owner applies the entries independently (the per-entry seqno guard
    still holds), so a retried batch — same seqnos — is idempotent.
    Only sent on connections that negotiated version ≥ 3.
    """

    call_id: int
    entries: "tuple[tuple[WireRep, int, bool], ...]"
    tag = protocol.CLEAN_BATCH

    def encode_into(self, out: bytearray) -> None:
        out.append(self.tag)
        write_uvarint(out, self.call_id)
        write_uvarint(out, len(self.entries))
        for target, seqno, strong in self.entries:
            target.to_wire(out)
            write_uvarint(out, seqno)
            out.append(1 if strong else 0)

    @classmethod
    def decode(cls, data, offset: int) -> "CleanBatch":
        call_id, offset = read_uvarint(data, offset)
        count, offset = read_uvarint(data, offset)
        entries = []
        for _ in range(count):
            target, offset = WireRep.from_wire(data, offset)
            seqno, offset = read_uvarint(data, offset)
            if offset >= len(data):
                raise UnmarshalError("truncated CleanBatch entry")
            entries.append((target, seqno, bool(data[offset])))
            offset += 1
        return cls(call_id, tuple(entries))


@dataclass(frozen=True)
class CleanBatchAck(_Encodable):
    """Owner's reply to a :class:`CleanBatch`; ``applied`` counts the
    entries processed (always the full batch — cleans of unknown
    objects are no-ops, exactly as for unit cleans)."""

    call_id: int
    applied: int
    tag = protocol.CLEAN_BATCH_ACK

    def encode_into(self, out: bytearray) -> None:
        out.append(self.tag)
        write_uvarint(out, self.call_id)
        write_uvarint(out, self.applied)

    @classmethod
    def decode(cls, data, offset: int) -> "CleanBatchAck":
        call_id, offset = read_uvarint(data, offset)
        applied, offset = read_uvarint(data, offset)
        return cls(call_id, applied)


@dataclass(frozen=True)
class CopyAck(_Encodable):
    """Receiver acknowledges a reference copy (one-way, no reply).

    Releases the sender's transient dirty entry identified by
    ``copy_id``; sent only after the receiver's dirty call completed,
    which is exactly what makes the Figure-1 race impossible.
    """

    target: WireRep
    copy_id: int
    tag = protocol.COPY_ACK

    def encode_into(self, out: bytearray) -> None:
        out.append(self.tag)
        self.target.to_wire(out)
        write_uvarint(out, self.copy_id)

    @classmethod
    def decode(cls, data, offset: int) -> "CopyAck":
        target, offset = WireRep.from_wire(data, offset)
        copy_id, offset = read_uvarint(data, offset)
        return cls(target, copy_id)


@dataclass(frozen=True)
class Ping(_Encodable):
    """Owner-to-client liveness probe (paper §2.4)."""

    call_id: int
    tag = protocol.PING

    def encode_into(self, out: bytearray) -> None:
        out.append(self.tag)
        write_uvarint(out, self.call_id)

    @classmethod
    def decode(cls, data, offset: int) -> "Ping":
        call_id, offset = read_uvarint(data, offset)
        return cls(call_id)


@dataclass(frozen=True)
class PingAck(_Encodable):
    call_id: int
    tag = protocol.PING_ACK

    def encode_into(self, out: bytearray) -> None:
        out.append(self.tag)
        write_uvarint(out, self.call_id)

    @classmethod
    def decode(cls, data, offset: int) -> "PingAck":
        call_id, offset = read_uvarint(data, offset)
        return cls(call_id)


# -- read leases (protocol v4) ----------------------------------------------

def encode_lease_grant_prefix(out: bytearray, call_id: int, lease_id: int,
                              ttl_ms: int, version: int) -> None:
    """Write a successful LEASE_GRANT envelope; the state snapshot
    pickle follows as trailing bytes (same zero-copy discipline as
    RESULT)."""
    out.append(protocol.LEASE_GRANT)
    write_uvarint(out, call_id)
    out.append(1)  # ok
    write_uvarint(out, lease_id)
    write_uvarint(out, ttl_ms)
    write_uvarint(out, version)
    _write_str(out, "")


@dataclass(frozen=True)
class LeaseReq(_Encodable):
    """Client asks the owner for a read lease on ``target``.

    ``ttl_ms`` is the TTL the client would like; the owner may grant
    less (its configured cap) but never more.  Only sent on
    connections that negotiated version ≥ 4.
    """

    call_id: int
    target: WireRep
    ttl_ms: int
    tag = protocol.LEASE_REQ

    def encode_into(self, out: bytearray) -> None:
        out.append(self.tag)
        write_uvarint(out, self.call_id)
        self.target.to_wire(out)
        write_uvarint(out, self.ttl_ms)

    @classmethod
    def decode(cls, data, offset: int) -> "LeaseReq":
        call_id, offset = read_uvarint(data, offset)
        target, offset = WireRep.from_wire(data, offset)
        ttl_ms, offset = read_uvarint(data, offset)
        return cls(call_id, target, ttl_ms)


@dataclass(frozen=True)
class LeaseRenew(_Encodable):
    """Refresh request for a previously granted lease.

    Semantically a :class:`LeaseReq` that also names the prior
    ``lease_id`` so the owner can retire it in the same step instead of
    waiting for its expiry.  The reply is a fresh LEASE_GRANT.
    """

    call_id: int
    target: WireRep
    lease_id: int
    ttl_ms: int
    tag = protocol.LEASE_RENEW

    def encode_into(self, out: bytearray) -> None:
        out.append(self.tag)
        write_uvarint(out, self.call_id)
        self.target.to_wire(out)
        write_uvarint(out, self.lease_id)
        write_uvarint(out, self.ttl_ms)

    @classmethod
    def decode(cls, data, offset: int) -> "LeaseRenew":
        call_id, offset = read_uvarint(data, offset)
        target, offset = WireRep.from_wire(data, offset)
        lease_id, offset = read_uvarint(data, offset)
        ttl_ms, offset = read_uvarint(data, offset)
        return cls(call_id, target, lease_id, ttl_ms)


class LeaseGrant(_Encodable):
    """Owner's reply to LEASE_REQ / LEASE_RENEW.

    On success (``ok``) it carries the lease id, the granted TTL, the
    object's lease version and — as the frame's *trailing* bytes, like
    a RESULT pickle — the snapshot of the object's lease-safe state.
    On denial the snapshot is empty and ``error`` says why; the client
    falls back to per-call RPC.

    A ``__slots__`` class (not a frozen dataclass) for the same reason
    as :class:`Result`: it carries a bulk pickle on the hot read path.
    """

    __slots__ = ("call_id", "ok", "lease_id", "ttl_ms", "version", "error",
                 "snapshot_pickle")
    tag = protocol.LEASE_GRANT

    def __init__(self, call_id: int, ok: bool, lease_id: int, ttl_ms: int,
                 version: int, error: str, snapshot_pickle) -> None:
        self.call_id = call_id
        self.ok = ok
        self.lease_id = lease_id
        self.ttl_ms = ttl_ms
        self.version = version
        self.error = error
        self.snapshot_pickle = snapshot_pickle

    def __eq__(self, other) -> bool:
        if isinstance(other, LeaseGrant):
            return (self.call_id == other.call_id and self.ok == other.ok
                    and self.lease_id == other.lease_id
                    and self.ttl_ms == other.ttl_ms
                    and self.version == other.version
                    and self.error == other.error
                    and self.snapshot_pickle == other.snapshot_pickle)
        return NotImplemented

    def __repr__(self) -> str:
        return (f"LeaseGrant(call_id={self.call_id}, ok={self.ok}, "
                f"lease_id={self.lease_id}, ttl_ms={self.ttl_ms}, "
                f"version={self.version}, error={self.error!r}, "
                f"snapshot_pickle=<{len(self.snapshot_pickle)} bytes>)")

    def encode_into(self, out: bytearray) -> None:
        out.append(self.tag)
        write_uvarint(out, self.call_id)
        out.append(1 if self.ok else 0)
        write_uvarint(out, self.lease_id)
        write_uvarint(out, self.ttl_ms)
        write_uvarint(out, self.version)
        _write_str(out, self.error)
        out += self.snapshot_pickle

    @classmethod
    def decode(cls, data, offset: int) -> "LeaseGrant":
        call_id, offset = read_uvarint(data, offset)
        if offset >= len(data):
            raise UnmarshalError("truncated LeaseGrant")
        ok = bool(data[offset])
        lease_id, offset = read_uvarint(data, offset + 1)
        ttl_ms, offset = read_uvarint(data, offset)
        version, offset = read_uvarint(data, offset)
        error, offset = _read_str(data, offset)
        return cls(call_id, ok, lease_id, ttl_ms, version, error,
                   _trailing(data, offset))


@dataclass(frozen=True)
class LeaseRelease(_Encodable):
    """Client gives up a lease early (one-way, no reply) — sent just
    before a CLEAN so the owner retires the lease without waiting for
    its deadline."""

    target: WireRep
    lease_id: int
    tag = protocol.LEASE_RELEASE

    def encode_into(self, out: bytearray) -> None:
        out.append(self.tag)
        self.target.to_wire(out)
        write_uvarint(out, self.lease_id)

    @classmethod
    def decode(cls, data, offset: int) -> "LeaseRelease":
        target, offset = WireRep.from_wire(data, offset)
        lease_id, offset = read_uvarint(data, offset)
        return cls(target, lease_id)


@dataclass(frozen=True)
class LeaseInvalidate(_Encodable):
    """Owner tells a lease holder its cached state is stale.

    Sent on the write path *before* the mutation's result is released;
    the writer's reply is withheld until every live holder has acked
    (or its lease has provably expired), which is what bounds staleness
    at one RTT.  ``version`` is the owner's new lease version.
    """

    call_id: int
    target: WireRep
    lease_id: int
    version: int
    tag = protocol.LEASE_INVALIDATE

    def encode_into(self, out: bytearray) -> None:
        out.append(self.tag)
        write_uvarint(out, self.call_id)
        self.target.to_wire(out)
        write_uvarint(out, self.lease_id)
        write_uvarint(out, self.version)

    @classmethod
    def decode(cls, data, offset: int) -> "LeaseInvalidate":
        call_id, offset = read_uvarint(data, offset)
        target, offset = WireRep.from_wire(data, offset)
        lease_id, offset = read_uvarint(data, offset)
        version, offset = read_uvarint(data, offset)
        return cls(call_id, target, lease_id, version)


@dataclass(frozen=True)
class LeaseInvalidateAck(_Encodable):
    call_id: int
    tag = protocol.LEASE_INVALIDATE_ACK

    def encode_into(self, out: bytearray) -> None:
        out.append(self.tag)
        write_uvarint(out, self.call_id)

    @classmethod
    def decode(cls, data, offset: int) -> "LeaseInvalidateAck":
        call_id, offset = read_uvarint(data, offset)
        return cls(call_id)


Message = Union[
    Hello, HelloAck, Bye, Call, Result, Fault, Busy,
    BindCall, BoundCall, FastCall, FastResult,
    Dirty, DirtyAck, Clean, CleanAck, CleanBatch, CleanBatchAck,
    CopyAck, Ping, PingAck,
    LeaseReq, LeaseGrant, LeaseRenew, LeaseRelease,
    LeaseInvalidate, LeaseInvalidateAck,
]

_DECODERS = {
    protocol.HELLO: Hello.decode,
    protocol.HELLO_ACK: HelloAck.decode,
    protocol.BYE: Bye.decode,
    protocol.CALL: Call.decode,
    protocol.RESULT: Result.decode,
    protocol.FAULT: Fault.decode,
    protocol.CALL_BIND: BindCall.decode,
    protocol.CALL_BOUND: BoundCall.decode,
    protocol.CALL_FAST: FastCall.decode,
    protocol.RESULT_FAST: FastResult.decode,
    protocol.BUSY: Busy.decode,
    protocol.DIRTY: Dirty.decode,
    protocol.DIRTY_ACK: DirtyAck.decode,
    protocol.CLEAN: Clean.decode,
    protocol.CLEAN_ACK: CleanAck.decode,
    protocol.CLEAN_BATCH: CleanBatch.decode,
    protocol.CLEAN_BATCH_ACK: CleanBatchAck.decode,
    protocol.COPY_ACK: CopyAck.decode,
    protocol.PING: Ping.decode,
    protocol.PING_ACK: PingAck.decode,
    protocol.LEASE_REQ: LeaseReq.decode,
    protocol.LEASE_GRANT: LeaseGrant.decode,
    protocol.LEASE_RENEW: LeaseRenew.decode,
    protocol.LEASE_RELEASE: LeaseRelease.decode,
    protocol.LEASE_INVALIDATE: LeaseInvalidate.decode,
    protocol.LEASE_INVALIDATE_ACK: LeaseInvalidateAck.decode,
}

#: Replies carry a ``call_id`` matched against the issuer's pending table.
REPLY_TAGS = frozenset(
    {protocol.RESULT, protocol.RESULT_FAST, protocol.FAULT,
     protocol.BUSY,
     protocol.DIRTY_ACK, protocol.CLEAN_ACK, protocol.CLEAN_BATCH_ACK,
     protocol.PING_ACK, protocol.LEASE_GRANT,
     protocol.LEASE_INVALIDATE_ACK}
)


def decode(data) -> Message:
    """Decode one frame into its message object.

    ``data`` may be ``bytes``, ``bytearray`` or ``memoryview``.  Pass
    a ``memoryview`` to make the decoded Call/Result pickle a
    zero-copy slice of the frame (the connection reader does).
    """
    if not len(data):
        raise ProtocolError("empty frame")
    decoder = _DECODERS.get(data[0])
    if decoder is None:
        raise ProtocolError(f"unknown message tag {protocol.tag_name(data[0])}")
    return decoder(data, 1)
