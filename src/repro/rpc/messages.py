"""Wire messages of the RPC and GC protocols.

Each message encodes as its tag byte followed by hand-written binary
fields (varints, length-prefixed strings/bytes, wireReps).  We keep
the envelope codecs separate from the pickles so the reader thread can
decode an envelope — and route it — without touching the argument
payload; unpickling happens later, in the thread that owns the call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import ProtocolError, UnmarshalError
from repro.wire import protocol
from repro.wire.ids import SpaceID
from repro.wire.varint import read_uvarint, write_uvarint
from repro.wire.wirerep import WireRep


def _write_str(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    write_uvarint(out, len(raw))
    out += raw


def _read_str(data: bytes, offset: int):
    length, offset = read_uvarint(data, offset)
    end = offset + length
    if end > len(data):
        raise UnmarshalError("truncated string field")
    try:
        return data[offset:end].decode("utf-8"), end
    except UnicodeDecodeError as exc:
        raise UnmarshalError(f"invalid UTF-8 in string field: {exc}") from exc


def _write_bytes(out: bytearray, raw: bytes) -> None:
    write_uvarint(out, len(raw))
    out += raw


def _read_bytes(data: bytes, offset: int):
    length, offset = read_uvarint(data, offset)
    end = offset + length
    if end > len(data):
        raise UnmarshalError("truncated bytes field")
    return data[offset:end], end


@dataclass(frozen=True)
class Hello:
    """Handshake: announces protocol version and the sender's identity."""

    space_id: SpaceID
    nickname: str
    version: int = protocol.PROTOCOL_VERSION
    tag = protocol.HELLO

    def encode(self) -> bytes:
        out = bytearray([self.tag])
        write_uvarint(out, self.version)
        out += self.space_id.to_bytes()
        _write_str(out, self.nickname)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes, offset: int) -> "Hello":
        version, offset = read_uvarint(data, offset)
        end = offset + 16
        space_id = SpaceID.from_bytes(data[offset:end])
        nickname, offset = _read_str(data, end)
        space_id = SpaceID(space_id.hi, space_id.lo, nickname)
        return cls(space_id, nickname, version)


@dataclass(frozen=True)
class HelloAck(Hello):
    tag = protocol.HELLO_ACK


@dataclass(frozen=True)
class Bye:
    """Orderly shutdown notice."""

    tag = protocol.BYE

    def encode(self) -> bytes:
        return bytes([self.tag])

    @classmethod
    def decode(cls, data: bytes, offset: int) -> "Bye":
        return cls()


@dataclass(frozen=True)
class Call:
    """Method invocation request.  ``args_pickle`` stays opaque here."""

    call_id: int
    target: WireRep
    method: str
    args_pickle: bytes
    tag = protocol.CALL

    def encode(self) -> bytes:
        out = bytearray([self.tag])
        write_uvarint(out, self.call_id)
        self.target.to_wire(out)
        _write_str(out, self.method)
        _write_bytes(out, self.args_pickle)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes, offset: int) -> "Call":
        call_id, offset = read_uvarint(data, offset)
        target, offset = WireRep.from_wire(data, offset)
        method, offset = _read_str(data, offset)
        args_pickle, offset = _read_bytes(data, offset)
        return cls(call_id, target, method, args_pickle)


@dataclass(frozen=True)
class Result:
    """Successful completion of a :class:`Call`."""

    call_id: int
    result_pickle: bytes
    tag = protocol.RESULT

    def encode(self) -> bytes:
        out = bytearray([self.tag])
        write_uvarint(out, self.call_id)
        _write_bytes(out, self.result_pickle)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes, offset: int) -> "Result":
        call_id, offset = read_uvarint(data, offset)
        result_pickle, offset = _read_bytes(data, offset)
        return cls(call_id, result_pickle)


@dataclass(frozen=True)
class Fault:
    """The remote implementation raised; carried back to the caller."""

    call_id: int
    kind: str
    message: str
    remote_traceback: str
    tag = protocol.FAULT

    def encode(self) -> bytes:
        out = bytearray([self.tag])
        write_uvarint(out, self.call_id)
        _write_str(out, self.kind)
        _write_str(out, self.message)
        _write_str(out, self.remote_traceback)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes, offset: int) -> "Fault":
        call_id, offset = read_uvarint(data, offset)
        kind, offset = _read_str(data, offset)
        message, offset = _read_str(data, offset)
        remote_traceback, offset = _read_str(data, offset)
        return cls(call_id, kind, message, remote_traceback)


@dataclass(frozen=True)
class Dirty:
    """Dirty call: register the sender in the object's dirty set.

    Carries the client's sequence number; the owner only applies an
    operation whose sequence number exceeds the largest seen from that
    client for this object (the paper's out-of-order guard).
    """

    call_id: int
    target: WireRep
    seqno: int
    tag = protocol.DIRTY

    def encode(self) -> bytes:
        out = bytearray([self.tag])
        write_uvarint(out, self.call_id)
        self.target.to_wire(out)
        write_uvarint(out, self.seqno)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes, offset: int) -> "Dirty":
        call_id, offset = read_uvarint(data, offset)
        target, offset = WireRep.from_wire(data, offset)
        seqno, offset = read_uvarint(data, offset)
        return cls(call_id, target, seqno)


@dataclass(frozen=True)
class DirtyAck:
    """Owner's reply to a dirty call; ``ok`` is False when the object
    is already gone (the client then raises NoSuchObjectError)."""

    call_id: int
    ok: bool
    error: str = ""
    tag = protocol.DIRTY_ACK

    def encode(self) -> bytes:
        out = bytearray([self.tag])
        write_uvarint(out, self.call_id)
        out.append(1 if self.ok else 0)
        _write_str(out, self.error)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes, offset: int) -> "DirtyAck":
        call_id, offset = read_uvarint(data, offset)
        if offset >= len(data):
            raise UnmarshalError("truncated DirtyAck")
        ok = bool(data[offset])
        error, offset = _read_str(data, offset + 1)
        return cls(call_id, ok, error)


@dataclass(frozen=True)
class Clean:
    """Clean call: remove the sender from the object's dirty set.

    A *strong* clean (paper §2.3) also bumps past any dirty call the
    client believes may have failed, guaranteeing that a late dirty
    arrival cannot resurrect the entry.
    """

    call_id: int
    target: WireRep
    seqno: int
    strong: bool = False
    tag = protocol.CLEAN

    def encode(self) -> bytes:
        out = bytearray([self.tag])
        write_uvarint(out, self.call_id)
        self.target.to_wire(out)
        write_uvarint(out, self.seqno)
        out.append(1 if self.strong else 0)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes, offset: int) -> "Clean":
        call_id, offset = read_uvarint(data, offset)
        target, offset = WireRep.from_wire(data, offset)
        seqno, offset = read_uvarint(data, offset)
        if offset >= len(data):
            raise UnmarshalError("truncated Clean")
        strong = bool(data[offset])
        return cls(call_id, target, seqno, strong)


@dataclass(frozen=True)
class CleanAck:
    call_id: int
    tag = protocol.CLEAN_ACK

    def encode(self) -> bytes:
        out = bytearray([self.tag])
        write_uvarint(out, self.call_id)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes, offset: int) -> "CleanAck":
        call_id, offset = read_uvarint(data, offset)
        return cls(call_id)


@dataclass(frozen=True)
class CopyAck:
    """Receiver acknowledges a reference copy (one-way, no reply).

    Releases the sender's transient dirty entry identified by
    ``copy_id``; sent only after the receiver's dirty call completed,
    which is exactly what makes the Figure-1 race impossible.
    """

    target: WireRep
    copy_id: int
    tag = protocol.COPY_ACK

    def encode(self) -> bytes:
        out = bytearray([self.tag])
        self.target.to_wire(out)
        write_uvarint(out, self.copy_id)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes, offset: int) -> "CopyAck":
        target, offset = WireRep.from_wire(data, offset)
        copy_id, offset = read_uvarint(data, offset)
        return cls(target, copy_id)


@dataclass(frozen=True)
class Ping:
    """Owner-to-client liveness probe (paper §2.4)."""

    call_id: int
    tag = protocol.PING

    def encode(self) -> bytes:
        out = bytearray([self.tag])
        write_uvarint(out, self.call_id)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes, offset: int) -> "Ping":
        call_id, offset = read_uvarint(data, offset)
        return cls(call_id)


@dataclass(frozen=True)
class PingAck:
    call_id: int
    tag = protocol.PING_ACK

    def encode(self) -> bytes:
        out = bytearray([self.tag])
        write_uvarint(out, self.call_id)
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes, offset: int) -> "PingAck":
        call_id, offset = read_uvarint(data, offset)
        return cls(call_id)


Message = Union[
    Hello, HelloAck, Bye, Call, Result, Fault,
    Dirty, DirtyAck, Clean, CleanAck, CopyAck, Ping, PingAck,
]

_DECODERS = {
    protocol.HELLO: Hello.decode,
    protocol.HELLO_ACK: HelloAck.decode,
    protocol.BYE: Bye.decode,
    protocol.CALL: Call.decode,
    protocol.RESULT: Result.decode,
    protocol.FAULT: Fault.decode,
    protocol.DIRTY: Dirty.decode,
    protocol.DIRTY_ACK: DirtyAck.decode,
    protocol.CLEAN: Clean.decode,
    protocol.CLEAN_ACK: CleanAck.decode,
    protocol.COPY_ACK: CopyAck.decode,
    protocol.PING: Ping.decode,
    protocol.PING_ACK: PingAck.decode,
}

#: Replies carry a ``call_id`` matched against the issuer's pending table.
REPLY_TAGS = frozenset(
    {protocol.RESULT, protocol.FAULT, protocol.DIRTY_ACK,
     protocol.CLEAN_ACK, protocol.PING_ACK}
)


def decode(data: bytes) -> Message:
    """Decode one frame into its message object."""
    if not data:
        raise ProtocolError("empty frame")
    decoder = _DECODERS.get(data[0])
    if decoder is None:
        raise ProtocolError(f"unknown message tag {protocol.tag_name(data[0])}")
    return decoder(data, 1)
