"""Work dispatch for incoming messages.

The original runtime forked a thread per incoming call.  We reproduce
those semantics with a cached pool: tasks never queue behind a busy
worker (a new thread is spawned whenever none is parked, up to a high
cap), so a handler that blocks on a nested call — e.g. a dirty call
issued while unpickling arguments — cannot deadlock the space.
Workers idle out after a few seconds to keep quiet processes small.
"""

from __future__ import annotations

import logging
import queue
import threading
from typing import Callable

logger = logging.getLogger("repro.rpc.dispatcher")

Task = Callable[[], None]

_STOP = object()


class Dispatcher:
    """Cached-thread task pool (see module docstring).

    Accounting happens entirely in aggregate, under ``_lock``:

    * ``_queued`` — tasks put on the queue and not yet dequeued
      (``submit`` increments, the dequeuing worker decrements).
    * ``_parked`` — workers currently blocked in ``get``
      (the worker increments before waiting, decrements after).

    ``submit`` spawns whenever the put would leave more queued tasks
    than parked workers, so a burst of submits from one reader thread
    spawns one worker per task instead of piling onto a single parked
    worker.  A timed-out worker may only retire when ``_queued`` is
    zero, so a task enqueued against its park can never be stranded.
    Both counters are aggregate — no per-thread "am I counted" state
    exists to drift out of sync with them.
    """
    def __init__(self, name: str = "dispatcher", max_workers: int = 256,
                 idle_timeout: float = 5.0):
        self.name = name
        self.max_workers = max_workers
        self.idle_timeout = idle_timeout
        # SimpleQueue: C-implemented put/get, no unfinished-task
        # bookkeeping — this queue is crossed once per incoming call.
        self._tasks: "queue.SimpleQueue" = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._workers = 0
        self._parked = 0
        self._queued = 0
        self._shutdown = False
        #: Tasks that raised instead of completing.  Read by Space
        #: stats; incremented without a lock (int += is a single
        #: best-effort counter, exactness doesn't matter here).
        self.tasks_failed = 0

    def submit(self, task: Task) -> None:
        """Run ``task`` promptly on some worker thread."""
        if self._shutdown:
            return
        # The put happens under the lock so a worker whose idle wait
        # timed out cannot observe ``_queued == 0`` after this task
        # was counted against its park and retire past it.
        with self._lock:
            if self._shutdown:
                return
            self._tasks.put(task)
            self._queued += 1
            if self._queued > self._parked and self._workers < self.max_workers:
                self._workers += 1
                spawn = True
            else:
                spawn = False
        if spawn:
            threading.Thread(
                target=self._worker, name=f"{self.name}-worker", daemon=True
            ).start()

    def stats(self) -> dict:
        """Snapshot of pool gauges (surfaced via ``Space.stats()``)."""
        with self._lock:
            return {
                "workers": self._workers,
                "parked": self._parked,
                "queued": self._queued,
                "tasks_failed": self.tasks_failed,
            }

    def shutdown(self) -> None:
        """Stop accepting tasks and release idle workers."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            workers = self._workers
        # Sentinels bypass the ``_queued`` count: they are addressed to
        # the workers themselves, not claimable work.
        for _ in range(workers):
            self._tasks.put(_STOP)

    def _worker(self) -> None:
        while True:
            # ``parked`` is iteration-local bookkeeping for which
            # dequeue path ran, consumed a few lines down in the same
            # iteration — not cross-iteration state that could drift
            # from the aggregate counters.
            parked = False
            try:
                # Fast path: work is already queued — skip the
                # park/unpark accounting and its lock round-trip.
                task = self._tasks.get_nowait()
            except queue.Empty:
                with self._lock:
                    self._parked += 1
                parked = True
                try:
                    task = self._tasks.get(timeout=self.idle_timeout)
                except queue.Empty:
                    with self._lock:
                        self._parked -= 1
                        # A submitter may have counted this park and
                        # enqueued between our timeout and this lock;
                        # retiring now would strand the task.  Stay
                        # alive instead.
                        if self._queued:
                            continue
                        self._workers -= 1
                    return
            with self._lock:
                if parked:
                    self._parked -= 1
                if task is _STOP:
                    self._workers -= 1
                    return
                self._queued -= 1
            try:
                task()
            except Exception:  # noqa: BLE001 - a task must never kill its worker
                self.tasks_failed += 1
                logger.exception("%s: dropped task that raised", self.name)
