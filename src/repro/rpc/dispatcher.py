"""Work dispatch for incoming messages.

The original runtime forked a thread per incoming call.  We reproduce
those semantics with a cached pool: tasks never queue behind a busy
worker (a new thread is spawned whenever none is idle, up to a high
cap), so a handler that blocks on a nested call — e.g. a dirty call
issued while unpickling arguments — cannot deadlock the space.
Workers idle out after a few seconds to keep quiet processes small.
"""

from __future__ import annotations

import logging
import queue
import threading
from typing import Callable

logger = logging.getLogger("repro.rpc.dispatcher")

Task = Callable[[], None]

_STOP = object()


class Dispatcher:
    """Cached-thread task pool (see module docstring)."""
    def __init__(self, name: str = "dispatcher", max_workers: int = 256,
                 idle_timeout: float = 5.0):
        self.name = name
        self.max_workers = max_workers
        self.idle_timeout = idle_timeout
        # SimpleQueue: C-implemented put/get, no unfinished-task
        # bookkeeping — this queue is crossed once per incoming call.
        self._tasks: "queue.SimpleQueue" = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._workers = 0
        #: Idle workers not yet claimed by a submitted task.  The
        #: *submitter* decrements this when it hands a task to the pool
        #: (claiming one parked worker), so a burst of submits from one
        #: reader thread spawns one worker per task instead of seeing a
        #: stale idle count while the first worker is still waking up.
        self._idle = 0
        self._shutdown = False
        #: Tasks that raised instead of completing.  Read by Space
        #: stats; incremented without a lock (int += is a single
        #: best-effort counter, exactness doesn't matter here).
        self.tasks_failed = 0

    def submit(self, task: Task) -> None:
        """Run ``task`` promptly on some worker thread."""
        if self._shutdown:
            return
        # The put happens under the lock so a worker whose idle wait
        # timed out cannot observe an empty queue after a claim was
        # spent on it and retire past the task.
        with self._lock:
            if self._shutdown:
                return
            self._tasks.put(task)
            if self._idle:
                self._idle -= 1
                spawn = False
            elif self._workers < self.max_workers:
                self._workers += 1
                spawn = True
            else:
                spawn = False
        if spawn:
            threading.Thread(
                target=self._worker, name=f"{self.name}-worker", daemon=True
            ).start()

    def shutdown(self) -> None:
        """Stop accepting tasks and release idle workers."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            workers = self._workers
        for _ in range(workers):
            self._tasks.put(_STOP)

    def _worker(self) -> None:
        # ``counted``: whether this worker currently contributes +1 to
        # ``_idle``.  A fresh spawn does not — the task that triggered
        # the spawn is destined for it.  Workers are interchangeable,
        # so a claim spent by a submitter may be "attributed" to a
        # different idle worker than the one that dequeues the task;
        # the aggregate count stays exact either way.
        counted = False
        while True:
            try:
                task = self._tasks.get(timeout=self.idle_timeout)
            except queue.Empty:
                with self._lock:
                    # A submitter may have spent a claim and enqueued
                    # between our timeout and this lock; retiring now
                    # would strand the task.  Stay alive instead.
                    if not self._tasks.empty():
                        continue
                    if counted:
                        self._idle -= 1
                    self._workers -= 1
                return
            if task is _STOP:
                with self._lock:
                    if counted:
                        self._idle -= 1
                    self._workers -= 1
                return
            # A submitter's claim paid for this dequeue (or the spawn
            # did); either way we are no longer in the idle count.
            counted = False
            try:
                task()
            except Exception:  # noqa: BLE001 - a task must never kill its worker
                self.tasks_failed += 1
                logger.exception("%s: dropped task that raised", self.name)
            with self._lock:
                if self._shutdown:
                    self._workers -= 1
                    return
                self._idle += 1
            counted = True
