"""Work dispatch for incoming messages.

The original runtime forked a thread per incoming call.  We reproduce
those semantics with a cached pool: tasks never queue behind a busy
worker (a new thread is spawned whenever none is idle, up to a high
cap), so a handler that blocks on a nested call — e.g. a dirty call
issued while unpickling arguments — cannot deadlock the space.
Workers idle out after a few seconds to keep quiet processes small.
"""

from __future__ import annotations

import queue
import threading
import traceback
from typing import Callable

Task = Callable[[], None]

_STOP = object()


class Dispatcher:
    """Cached-thread task pool (see module docstring)."""
    def __init__(self, name: str = "dispatcher", max_workers: int = 256,
                 idle_timeout: float = 5.0):
        self.name = name
        self.max_workers = max_workers
        self.idle_timeout = idle_timeout
        # SimpleQueue: C-implemented put/get, no unfinished-task
        # bookkeeping — this queue is crossed once per incoming call.
        self._tasks: "queue.SimpleQueue" = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._workers = 0
        self._idle = 0
        self._shutdown = False

    def submit(self, task: Task) -> None:
        """Run ``task`` promptly on some worker thread."""
        if self._shutdown:
            return
        # Enqueue first, then decide whether to spawn — in that order
        # the spawn check cannot be raced by an idle worker timing out
        # past the task: a worker that times out while the queue is
        # non-empty stays alive (see ``_worker``), and a worker that
        # retired before the put is no longer counted idle here.
        self._tasks.put(task)
        with self._lock:
            if self._shutdown:
                return
            spawn = self._idle == 0 and self._workers < self.max_workers
            if spawn:
                self._workers += 1
        if spawn:
            threading.Thread(
                target=self._worker, name=f"{self.name}-worker", daemon=True
            ).start()

    def shutdown(self) -> None:
        """Stop accepting tasks and release idle workers."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            workers = self._workers
        for _ in range(workers):
            self._tasks.put(_STOP)

    def _worker(self) -> None:
        while True:
            with self._lock:
                self._idle += 1
            try:
                task = self._tasks.get(timeout=self.idle_timeout)
            except queue.Empty:
                with self._lock:
                    self._idle -= 1
                    # A submitter that saw us idle may have enqueued a
                    # task between our timeout and this lock; retiring
                    # now would strand it.  Stay alive instead.
                    if not self._tasks.empty():
                        continue
                    self._workers -= 1
                return
            with self._lock:
                self._idle -= 1
            if task is _STOP:
                with self._lock:
                    self._workers -= 1
                return
            try:
                task()
            except Exception:  # noqa: BLE001 - a task must never kill its worker
                traceback.print_exc()
