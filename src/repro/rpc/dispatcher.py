"""Work dispatch for incoming messages.

The original runtime forked a thread per incoming call.  We reproduce
those semantics with a cached pool: tasks never queue behind a busy
worker (a new thread is spawned whenever none is parked, up to a high
cap), so a handler that blocks on a nested call — e.g. a dirty call
issued while unpickling arguments — cannot deadlock the space.
Workers idle out after a few seconds to keep quiet processes small.

With ``shards > 0`` the pool adds a work-stealing plane on top: each
reactor shard gets a local task deque, and a request delivered by
shard *i*'s I/O thread lands in deque *i*.  Workers prefer their home
deque (assigned round-robin at spawn), then steal from the others in
ring order, then fall back to the shared queue — so a burst arriving
on one shard fans out across every idle worker instead of serialising
behind the single global ``SimpleQueue``, while an unsharded submit
(handshakes, timers, standalone connections) behaves exactly as
before.
"""

from __future__ import annotations

import logging
import queue
import threading
from collections import deque
from typing import Callable, List, Optional

logger = logging.getLogger("repro.rpc.dispatcher")

Task = Callable[[], None]

_STOP = object()


class _ShardToken:
    """A wakeup rider on the shared queue announcing 'one task is in
    shard ``index``'s deque (or was, until a faster worker drained
    it)'.  Tokens wake parked workers; they are not the task itself,
    so a token whose deque turned out empty is dropped silently."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index


class Dispatcher:
    """Cached-thread task pool (see module docstring).

    Accounting happens entirely in aggregate, under ``_lock``:

    * ``_queued`` — tasks accepted and not yet taken by a worker
      (``submit`` increments; the worker that takes the task — from
      the shared queue or any shard deque — decrements).
    * ``_parked`` — workers currently blocked in ``get``
      (the worker increments before waiting, decrements after).

    ``submit`` spawns whenever accepting would leave more queued tasks
    than parked workers, so a burst of submits from one reader thread
    spawns one worker per task instead of piling onto a single parked
    worker.  A timed-out worker may only retire when ``_queued`` is
    zero, so a task enqueued against its park can never be stranded.
    Both counters are aggregate — no per-thread "am I counted" state
    exists to drift out of sync with them.

    Sharded submits append the task to the shard's deque and put a
    :class:`_ShardToken` on the shared queue.  Tokens and shard tasks
    are *not* 1:1 consumed: a busy worker drains shard deques directly
    between tasks (the fast path that skips the queue round-trip), so
    a token may find every deque empty — it is dropped and the worker
    re-parks.  Spurious wakeups are cheap; stranding is impossible
    because every shard task is covered by at least one token and by
    the retire check on ``_queued``.
    """

    def __init__(self, name: str = "dispatcher", max_workers: int = 256,
                 idle_timeout: float = 5.0, shards: int = 0,
                 max_queued: Optional[int] = None,
                 shard_queue_max: Optional[int] = None):
        self.name = name
        self.max_workers = max_workers
        self.idle_timeout = idle_timeout
        #: Global cap on queued-but-untaken tasks; ``None`` = unbounded.
        #: At the cap ``submit`` refuses (returns False) — queue-based
        #: load leveling, the caller sheds with BUSY.
        self.max_queued = max_queued
        #: Per-shard deque cap; an over-full shard spills to the shared
        #: queue (still counted against ``max_queued``).
        self.shard_queue_max = shard_queue_max
        # SimpleQueue: C-implemented put/get, no unfinished-task
        # bookkeeping — this queue is crossed once per incoming call.
        self._tasks: "queue.SimpleQueue" = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._workers = 0
        self._parked = 0
        self._queued = 0
        self._spawned = 0
        self._shutdown = False
        self._shards: List[deque] = [deque() for _ in range(max(0, shards))]
        #: Tasks that raised instead of completing.  Read by Space
        #: stats; incremented without a lock (int += is a single
        #: best-effort counter, exactness doesn't matter here).
        self.tasks_failed = 0
        #: Tasks taken from a deque other than the worker's home shard.
        self.stolen_tasks = 0
        #: Tasks submitted with a shard hint.
        self.shard_submits = 0
        #: Submits that wanted a fresh worker but found the pool at
        #: ``max_workers`` — the saturation signal admission control
        #: keys off (the task still runs, later).
        self.saturated_submits = 0
        #: Submits refused at the ``max_queued`` cap.
        self.shed_submits = 0
        #: Shard-deque overflows that spilled to the shared queue.
        self.shard_spills = 0
        #: Queued-but-unstarted tasks discarded by a draining shutdown.
        self.discarded_tasks = 0

    def submit(self, task: Task, shard: Optional[int] = None,
               force: bool = False) -> bool:
        """Run ``task`` promptly on some worker thread.

        ``shard`` routes the task to that reactor shard's local deque
        (mod the configured shard count); ``None`` — or an unsharded
        pool — uses the shared queue.

        Returns False — and does not hold the task — when the pool has
        shut down or the ``max_queued`` cap is reached; the caller
        decides how to refuse (typically a BUSY reply).  ``force``
        exempts the task from the queue cap (never from shutdown):
        the collector's control plane must not be refused, or a live
        peer could be mistaken for a dead one.
        """
        if self._shutdown:
            return False
        # The put happens under the lock so a worker whose idle wait
        # timed out cannot observe ``_queued == 0`` after this task
        # was counted against its park and retire past it.
        with self._lock:
            if self._shutdown:
                return False
            if not force and self.max_queued is not None and \
                    self._queued >= self.max_queued:
                self.shed_submits += 1
                return False
            if shard is not None and self._shards:
                index = shard % len(self._shards)
                bucket = self._shards[index]
                if self.shard_queue_max is not None and \
                        len(bucket) >= self.shard_queue_max:
                    # Over-full shard: spill to the shared queue so one
                    # hot I/O shard levels across every worker.
                    self.shard_spills += 1
                    self._tasks.put(task)
                else:
                    bucket.append(task)
                    self._tasks.put(_ShardToken(index))
                    self.shard_submits += 1
            else:
                self._tasks.put(task)
            self._queued += 1
            if self._queued > self._parked:
                if self._workers < self.max_workers:
                    self._workers += 1
                    self._spawned += 1
                    spawn = True
                else:
                    self.saturated_submits += 1
                    spawn = False
            else:
                spawn = False
        if spawn:
            threading.Thread(
                target=self._worker, args=(self._spawned,),
                name=f"{self.name}-worker", daemon=True,
            ).start()
        return True

    def stats(self) -> dict:
        """Snapshot of pool gauges (surfaced via ``Space.stats()``)."""
        with self._lock:
            return {
                "workers": self._workers,
                "parked": self._parked,
                "queued": self._queued,
                "tasks_failed": self.tasks_failed,
                "shards": len(self._shards),
                "shard_submits": self.shard_submits,
                "stolen_tasks": self.stolen_tasks,
                "saturated_submits": self.saturated_submits,
                "shed_submits": self.shed_submits,
                "shard_spills": self.shard_spills,
                "discarded_tasks": self.discarded_tasks,
                "max_workers": self.max_workers,
                "max_queued": self.max_queued,
            }

    def shutdown(self, discard_pending: bool = False) -> int:
        """Stop accepting tasks and release idle workers.

        With ``discard_pending`` queued-but-unstarted tasks are
        dropped instead of run — the bounded-drain shutdown path: a
        space quitting under overload must not execute a full backlog
        first.  Each discarded task's ``on_shed`` attribute (if any)
        is invoked so a waiting caller gets a BUSY reply rather than
        silence-until-timeout.  Returns the number discarded.
        """
        with self._lock:
            if self._shutdown:
                return 0
            self._shutdown = True
            workers = self._workers
        discarded = 0
        if discard_pending:
            discarded = self._discard_pending()
        # Sentinels bypass the ``_queued`` count: they are addressed to
        # the workers themselves, not claimable work.
        for _ in range(workers):
            self._tasks.put(_STOP)
        return discarded

    def _discard_pending(self) -> int:
        """Drain every queued-but-untaken task (deques + shared queue),
        firing ``on_shed`` hooks.  Workers racing us may still take
        some tasks — that is fine, the goal is promptness, not an
        exact cut."""
        dropped: List[Task] = []
        with self._lock:
            for bucket in self._shards:
                while bucket:
                    dropped.append(bucket.popleft())
                    self._queued -= 1
            while True:
                try:
                    item = self._tasks.get_nowait()
                except queue.Empty:
                    break
                if item is _STOP or type(item) is _ShardToken:
                    # Tokens' tasks were drained above; stray sentinels
                    # (a prior shutdown call) address nobody now.
                    continue
                dropped.append(item)
                self._queued -= 1
            self.discarded_tasks += len(dropped)
        for task in dropped:
            on_shed = getattr(task, "on_shed", None)
            if on_shed is not None:
                try:
                    on_shed()
                except Exception:  # noqa: BLE001 - shedding must not fail shutdown
                    logger.exception("%s: on_shed hook raised", self.name)
        return len(dropped)

    def _take_sharded(self, prefer: Optional[int]) -> Optional[Task]:
        """Pop a task from the shard deques — home shard first, then
        steal in ring order.  Decrements ``_queued`` iff a task was
        taken.  No-op (and lock-free) on an unsharded pool."""
        shards = self._shards
        if not shards:
            return None
        count = len(shards)
        home = prefer % count if prefer is not None else 0
        with self._lock:
            for offset in range(count):
                index = (home + offset) % count
                bucket = shards[index]
                if bucket:
                    task = bucket.popleft()
                    self._queued -= 1
                    if offset:
                        self.stolen_tasks += 1
                    return task
        return None

    def _worker(self, seq: int) -> None:
        # Home shard: round-robin by spawn order, so the steady-state
        # worker population covers every deque.
        home = seq % len(self._shards) if self._shards else None
        while True:
            # Fast path: drain shard deques (home first) without a
            # queue round-trip, then the shared queue.
            task = self._take_sharded(home)
            if task is None:
                # ``parked`` is iteration-local bookkeeping for which
                # dequeue path ran, consumed a few lines down in the
                # same iteration — not cross-iteration state that
                # could drift from the aggregate counters.
                parked = False
                try:
                    item = self._tasks.get_nowait()
                except queue.Empty:
                    with self._lock:
                        self._parked += 1
                    parked = True
                    try:
                        item = self._tasks.get(timeout=self.idle_timeout)
                    except queue.Empty:
                        with self._lock:
                            self._parked -= 1
                            # A submitter may have counted this park
                            # and enqueued between our timeout and
                            # this lock; retiring now would strand the
                            # task.  Stay alive instead.
                            if self._queued:
                                continue
                            self._workers -= 1
                        return
                if item is _STOP:
                    with self._lock:
                        if parked:
                            self._parked -= 1
                        self._workers -= 1
                    return
                if type(item) is _ShardToken:
                    with self._lock:
                        if parked:
                            self._parked -= 1
                    task = self._take_sharded(item.index)
                    if task is None:
                        # A fast-path worker beat us to the task this
                        # token announced; the wakeup was spent, the
                        # work was not lost.
                        continue
                else:
                    with self._lock:
                        if parked:
                            self._parked -= 1
                        self._queued -= 1
                    task = item
            try:
                task()
            except Exception:  # noqa: BLE001 - a task must never kill its worker
                self.tasks_failed += 1
                logger.exception("%s: dropped task that raised", self.name)
