"""Per-stage hot-path accounting for the call pipeline.

A null call crosses six stages we care about when chasing the raw-socket
gap: request/result *encode*, the send *syscall*, frame *reactor* entry
(envelope decode + routing), dispatcher hand-off latency (*dispatch*),
the served method itself (*user_code*), and reply/args *decode*.  A
:class:`HotpathProfile` holds one cumulative ``(ns, calls)`` pair per
stage; the owning :class:`~repro.core.space.Space` and its connections
bump the counters inline with two ``perf_counter_ns`` reads per stage.

That costs real time on a microsecond-scale hot path, so profiling is
**off by default**: ``Space(hotpath_profile=True)`` turns it on, and
every instrumentation site guards on a single ``is None`` check when it
is off.  ``Space.stats()["hotpath"]`` surfaces the buckets either way
(zeros plus ``enabled: False`` when off); ``benchmarks/measure_hotpath.py``
prints the per-call breakdown.

Counter increments ride the GIL like every other stats field —
best-effort exactness, which is all a profile needs.
"""

from __future__ import annotations

#: Stage names, in pipeline order.  Each contributes ``<stage>_ns`` and
#: ``<stage>_calls`` slots to the profile.
STAGES = (
    "encode",     # request encode (client) + result encode (server)
    "syscall",    # channel.send_framed — the wire write
    "reactor",    # on_frame: envelope decode + reply/request routing
    "dispatch",   # dispatcher hand-off latency (submit -> task start)
    "user_code",  # the served method body
    "decode",     # reply decode (client) + argument decode (server)
)


class HotpathProfile:
    """Cumulative per-stage counters for one space's call traffic.

    Client- and server-side contributions share the buckets: a space
    that both issues and serves calls accumulates both (the E-series
    loopback benchmarks use separate spaces per role, so each profile
    reads cleanly).  Attributes are bumped directly by instrumentation
    sites (``profile.encode_ns += dt``) — no method-call overhead.
    """

    __slots__ = tuple(f"{stage}_ns" for stage in STAGES) + tuple(
        f"{stage}_calls" for stage in STAGES
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for stage in STAGES:
            setattr(self, f"{stage}_ns", 0)
            setattr(self, f"{stage}_calls", 0)

    def stats(self, enabled: bool = True) -> dict:
        """The ``Space.stats()["hotpath"]`` payload: per-stage total
        nanoseconds, sample counts, and mean microseconds."""
        stages = {}
        for stage in STAGES:
            ns = getattr(self, f"{stage}_ns")
            calls = getattr(self, f"{stage}_calls")
            stages[stage] = {
                "ns": ns,
                "calls": calls,
                "mean_us": (ns / calls / 1000.0) if calls else 0.0,
            }
        return {"enabled": enabled, "stages": stages}
