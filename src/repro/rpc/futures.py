"""Call futures: the pipelined half of the RPC runtime.

A :class:`CallFuture` is one awaited reply slot in a connection's
pending table.  Because every connection already multiplexes calls by
``call_id``, hundreds of futures can be in flight on one channel
without parking hundreds of threads — the reader thread completes each
future as its reply frame arrives, and waiters (if any) block only in
``result()``.

The completion discipline mirrors the old ``_PendingCall`` exactly:
reply/failure fields and the event are set *under* the connection's
pending lock, so a caller that holds the lock and finds the slot gone
from the table owns it exclusively.  That is what makes the blocking
path's slot recycling safe, and what makes a timed-out ``result()``
able to abandon the call atomically (a late reply to an abandoned id
is dropped silently by the reader).

Done callbacks run outside the lock — on the reader thread for a
future completed by a reply, or on the calling thread when the future
was already done at registration time.  Callbacks must be quick and
must not block; a callback that raises is logged and swallowed.

:class:`RemoteFuture` wraps a CallFuture for the public API: its
``result()`` decodes the reply (unpickling the value, translating
faults back into exceptions) on the *waiter's* thread, preserving the
rule that pickles are never decoded on the reader thread.
"""

from __future__ import annotations

import logging
import threading
from typing import Callable, List, Optional

from repro.errors import CallTimeout

logger = logging.getLogger("repro.rpc.futures")

_UNSET = object()


class CallFuture:
    """One in-flight call awaiting its reply frame.

    Created by ``Connection.call_buffer_async``; completed by the
    connection's reader thread (reply or connection failure), by a
    timed-out ``result()``/``exception()`` (which abandons the call),
    or by :meth:`cancel`.
    """

    __slots__ = ("_connection", "call_id", "_event", "_reply", "_failure",
                 "_callbacks")

    def __init__(self, connection, call_id: int):
        self._connection = connection
        self.call_id = call_id
        self._event = threading.Event()
        self._reply = None
        self._failure: Optional[Exception] = None
        self._callbacks: Optional[List[Callable]] = None

    # -- introspection -------------------------------------------------------

    def done(self) -> bool:
        """True once a reply, failure or abandonment has landed."""
        return self._event.is_set()

    # -- completion (package-private; pending lock held) ---------------------

    def _complete(self, reply, failure) -> Optional[List[Callable]]:
        """Fill the slot and wake waiters.  MUST be called with the
        connection's pending lock held and the slot already popped from
        the pending table; returns the callbacks for the caller to run
        after releasing the lock."""
        self._reply = reply
        self._failure = failure
        self._event.set()
        callbacks = self._callbacks
        self._callbacks = None
        return callbacks

    def _run_callbacks(self, callbacks: Optional[List[Callable]]) -> None:
        if not callbacks:
            return
        for callback in callbacks:
            try:
                callback(self)
            except Exception:  # noqa: BLE001 - callbacks must not kill the reader
                logger.exception("call-future done callback failed")

    def _reset(self) -> None:
        """Recycle support (blocking path only; see Connection)."""
        self._event.clear()
        self._reply = None
        self._failure = None
        self._callbacks = None

    # -- waiting -------------------------------------------------------------

    def _await(self, timeout: Optional[float]) -> None:
        """Wait for completion; a timeout *abandons* the call — the
        slot leaves the pending table, a late reply is dropped, and the
        future completes with :class:`CallTimeout`."""
        if self._event.wait(timeout):
            return
        connection = self._connection
        with connection._pending_lock:
            connection._pending.pop(self.call_id, None)
            if self._event.is_set():
                return  # completer won the race; use its outcome
            callbacks = self._complete(
                None,
                CallTimeout(
                    f"no reply to call {self.call_id} within {timeout:.1f}s"
                ),
            )
        self._run_callbacks(callbacks)

    def result(self, timeout: Optional[float] = None):
        """The reply message, blocking up to ``timeout`` seconds.

        Raises the call's failure (CommFailure on connection loss,
        CallTimeout after a timed-out wait — which also abandons the
        call: no reply will ever be delivered to this future).
        """
        self._await(timeout)
        if self._failure is not None:
            raise self._failure
        return self._reply

    def exception(self, timeout: Optional[float] = None) -> Optional[Exception]:
        """The call's failure, or None if it completed with a reply.
        A timed-out wait abandons the call and returns the timeout."""
        self._await(timeout)
        return self._failure

    def add_done_callback(self, callback: Callable[["CallFuture"], None]) -> None:
        """Run ``callback(self)`` on completion — immediately (on the
        calling thread) if already done, else on the completing thread
        (usually the connection reader; keep it quick)."""
        with self._connection._pending_lock:
            if not self._event.is_set():
                if self._callbacks is None:
                    self._callbacks = []
                self._callbacks.append(callback)
                return
        self._run_callbacks([callback])

    def cancel(self, failure: Optional[Exception] = None) -> bool:
        """Abandon the call: drop the pending slot so a late reply is
        discarded, and complete with ``failure`` (default CallTimeout).
        Returns False if the future was already done."""
        connection = self._connection
        with connection._pending_lock:
            connection._pending.pop(self.call_id, None)
            if self._event.is_set():
                return False
            callbacks = self._complete(
                None,
                failure if failure is not None
                else CallTimeout(f"call {self.call_id} cancelled"),
            )
        self._run_callbacks(callbacks)
        return True

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return f"<CallFuture call_id={self.call_id} ({state})>"


class RemoteFuture:
    """Public future for one asynchronous remote method invocation.

    Wraps the connection-level :class:`CallFuture`; ``decode`` is the
    space-supplied closure that turns the raw reply message into the
    call's return value (raising the remote exception for faults).
    Decoding happens lazily, once, on the first thread that asks —
    never on the connection reader.
    """

    __slots__ = ("_inner", "_decode", "_value", "_decode_lock")

    def __init__(self, inner: CallFuture, decode: Callable):
        self._inner = inner
        self._decode = decode
        self._value = _UNSET
        self._decode_lock = threading.Lock()

    def done(self) -> bool:
        return self._inner.done()

    def result(self, timeout: Optional[float] = None):
        """The remote method's return value; raises its exception.

        Blocks up to ``timeout`` seconds; a timed-out wait abandons the
        call (see :meth:`CallFuture.result`).
        """
        reply = self._inner.result(timeout)
        with self._decode_lock:
            if self._value is _UNSET:
                self._value = self._decode(reply)
        return self._value

    def exception(self, timeout: Optional[float] = None) -> Optional[Exception]:
        """The exception the call would raise, or None on success."""
        failure = self._inner.exception(timeout)
        if failure is not None:
            return failure
        try:
            self.result(0)
        except Exception as exc:  # noqa: BLE001 - the remote fault, decoded
            return exc
        return None

    def add_done_callback(
        self, callback: Callable[["RemoteFuture"], None]
    ) -> None:
        """Run ``callback(self)`` once the reply (or failure) lands.
        The callback receives this RemoteFuture; calling ``result()``
        inside it will not block."""
        self._inner.add_done_callback(lambda _inner: callback(self))

    def cancel(self, failure: Optional[Exception] = None) -> bool:
        return self._inner.cancel(failure)

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return f"<RemoteFuture call_id={self._inner.call_id} ({state})>"
