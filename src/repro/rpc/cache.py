"""Connection caching.

The paper's runtime caches one connection per peer and multiplexes
calls over it; establishing a connection (TCP handshake + HELLO
exchange) is far more expensive than a call, which experiment E8
quantifies.  The cache is keyed by endpoint; a broken connection is
evicted by its ``on_close`` callback and the next call reconnects.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from repro.errors import CommFailure, SpaceShutdownError
from repro.rpc.connection import Connection


class ConnectionCache:
    """One cached connection per endpoint (see module docstring)."""
    def __init__(self, connect: Callable[[str], Connection]):
        """``connect(endpoint)`` must build a handshaken Connection."""
        self._connect = connect
        self._connections: Dict[str, Connection] = {}
        self._locks: Dict[str, threading.Lock] = {}
        self._lock = threading.Lock()
        self._shutdown = False

    def get(self, endpoint: str) -> Connection:
        """Return a live cached connection, creating one if needed."""
        with self._lock:
            if self._shutdown:
                raise SpaceShutdownError("space is shut down")
            existing = self._connections.get(endpoint)
            if existing is not None and not existing.closed:
                return existing
            per_endpoint = self._locks.setdefault(endpoint, threading.Lock())
        # Serialise dials per endpoint but not across endpoints.
        with per_endpoint:
            with self._lock:
                existing = self._connections.get(endpoint)
                if existing is not None and not existing.closed:
                    return existing
            try:
                connection = self._connect(endpoint)
            except BaseException:
                # Nothing cached for this endpoint, so its dial lock
                # would otherwise linger forever — unreachable peers
                # retried periodically (e.g. by the pinger) would grow
                # ``_locks`` without bound.
                with self._lock:
                    if endpoint not in self._connections:
                        self._locks.pop(endpoint, None)
                raise
            with self._lock:
                if not self._shutdown:
                    racer = self._connections.get(endpoint)
                    if connection.closed:
                        # The connection died between handshake and
                        # here — its on_close hook already ran, so an
                        # evict for it can never fire again.  Caching
                        # it would wedge the endpoint behind a dead
                        # entry; hand out a live racer if one slipped
                        # in, else surface the failure.
                        if racer is not None and not racer.closed:
                            return racer
                        if racer is None:
                            self._locks.pop(endpoint, None)
                        raise CommFailure(
                            f"connection to {endpoint!r} closed during dial"
                        )
                    if racer is None or racer.closed:
                        self._connections[endpoint] = connection
                        return connection
                    # An evict dropped our dial lock mid-flight and a
                    # fresh dial won the endpoint; keep theirs.
                else:
                    racer = None
            try:
                connection.close()
            except CommFailure:
                pass
            if racer is not None:
                return racer
            raise SpaceShutdownError("space is shut down")

    def evict(self, connection: Connection) -> None:
        """Forget ``connection`` (typically from its on_close hook)."""
        with self._lock:
            for endpoint, cached in list(self._connections.items()):
                if cached is connection:
                    del self._connections[endpoint]
                    # Drop the endpoint's dial lock with it: entries
                    # must track *live* endpoints, not every endpoint
                    # ever contacted.
                    self._locks.pop(endpoint, None)

    def peek(self, endpoint: str) -> Optional[Connection]:
        with self._lock:
            return self._connections.get(endpoint)

    def close_all(self) -> None:
        with self._lock:
            self._shutdown = True
            connections = list(self._connections.values())
            self._connections.clear()
            self._locks.clear()
        for connection in connections:
            try:
                connection.close()
            except CommFailure:
                pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._connections)
