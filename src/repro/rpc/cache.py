"""Connection caching.

The paper's runtime caches one connection per peer and multiplexes
calls over it; establishing a connection (TCP handshake + HELLO
exchange) is far more expensive than a call, which experiment E8
quantifies.  The cache is keyed by endpoint; a broken connection is
evicted by its ``on_close`` callback and the next call reconnects.

With an ``idle_ttl`` the cache also *reaps*: a periodic sweep (armed
by the owning space on its reactor's timer) orderly-closes any cached
connection unused for longer than the TTL.  The eviction-vs-in-flight
race is resolved at two levels: ``get`` refreshes the last-use stamp
under the cache lock, so only endpoints quiet for a full TTL are
candidates, and the final close goes through
``Connection.try_close_idle``, whose pending-table check is atomic —
a connection with calls in flight is put back instead of closed.  The
one window left open is a caller that obtained the connection from
``get`` and then stalls for longer than the TTL before sending (e.g.
marshalling a huge argument); such a call fails pre-send with
:class:`~repro.errors.ConnectionClosed` — nothing went on the wire —
and the space's invoke path retries it once on a fresh dial.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.errors import CommFailure, SpaceShutdownError
from repro.rpc.connection import Connection


class ConnectionCache:
    """One cached connection per endpoint (see module docstring)."""
    def __init__(self, connect: Callable[[str], Connection],
                 idle_ttl: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic,
                 upgrade: Optional[Callable[[str], Optional[str]]] = None):
        """``connect(endpoint)`` must build a handshaken Connection.
        ``idle_ttl`` of None disables reaping; ``clock`` is injectable
        so tests can age connections without sleeping.  ``upgrade``
        may map an endpoint to a preferred alternate (the space wires
        in same-machine shm discovery here); a dial tries the
        alternate first and falls back to the original on failure, and
        the cache entry stays keyed by the *original* endpoint either
        way."""
        self._connect = connect
        self._upgrade = upgrade
        self._connections: Dict[str, Connection] = {}
        self._locks: Dict[str, threading.Lock] = {}
        self._last_used: Dict[str, float] = {}
        self._lock = threading.Lock()
        self._shutdown = False
        self.idle_ttl = idle_ttl
        self._clock = clock
        #: Connections orderly-closed by the idle sweep.
        self.idle_reaped = 0
        #: Successful dials (cache misses that built a connection).
        self.dials = 0
        #: Dials that landed on the upgraded (e.g. shm) endpoint.
        self.upgraded_dials = 0
        #: Endpoint-health strikes: consecutive ServerBusy replies per
        #: endpoint (reset by the first non-busy completion).  Read by
        #: :meth:`healthy_order` to demote overloaded endpoints.
        self._busy_strikes: Dict[str, int] = {}
        #: How many strikes demote an endpoint (mirrors
        #: ``AdmissionConfig.busy_strikes``; the space sets it).
        self.busy_strike_limit = 3
        #: Times an endpoint crossed the strike limit.
        self.busy_demotions = 0

    # -- endpoint health -------------------------------------------------

    def note_busy(self, endpoint: Optional[str]) -> None:
        """Record a ServerBusy from ``endpoint``; repeated strikes
        demote it in :meth:`healthy_order`."""
        if endpoint is None:
            return
        with self._lock:
            strikes = self._busy_strikes.get(endpoint, 0) + 1
            self._busy_strikes[endpoint] = strikes
            if strikes == self.busy_strike_limit:
                self.busy_demotions += 1

    def note_ok(self, endpoint: Optional[str]) -> None:
        """A successful completion clears the endpoint's strikes."""
        if endpoint is None or not self._busy_strikes:
            return
        with self._lock:
            self._busy_strikes.pop(endpoint, None)

    def healthy_order(self, endpoints):
        """Stable-sort ``endpoints``, demoted (strike-limit) ones
        last — callers with replica choice try healthy replicas
        first."""
        if not self._busy_strikes or len(endpoints) < 2:
            return list(endpoints)
        with self._lock:
            limit = self.busy_strike_limit
            return sorted(
                endpoints,
                key=lambda e: self._busy_strikes.get(e, 0) >= limit,
            )

    def get(self, endpoint: str) -> Connection:
        """Return a live cached connection, creating one if needed."""
        with self._lock:
            if self._shutdown:
                raise SpaceShutdownError("space is shut down")
            existing = self._connections.get(endpoint)
            if (existing is not None and not existing.closed
                    and not existing.closing):
                self._last_used[endpoint] = self._clock()
                return existing
            per_endpoint = self._locks.setdefault(endpoint, threading.Lock())
        # Serialise dials per endpoint but not across endpoints.
        with per_endpoint:
            with self._lock:
                existing = self._connections.get(endpoint)
                if (existing is not None and not existing.closed
                        and not existing.closing):
                    self._last_used[endpoint] = self._clock()
                    return existing
            try:
                connection = self._dial(endpoint)
            except BaseException:
                # Nothing cached for this endpoint, so its dial lock
                # would otherwise linger forever — unreachable peers
                # retried periodically (e.g. by the pinger) would grow
                # ``_locks`` without bound.
                with self._lock:
                    if endpoint not in self._connections:
                        self._locks.pop(endpoint, None)
                raise
            # Attribute the connection to the endpoint asked for (even
            # when the dial upgraded to a side door) so BUSY replies
            # demote the right name in healthy_order.
            connection.endpoint = endpoint
            self.dials += 1
            with self._lock:
                if not self._shutdown:
                    racer = self._connections.get(endpoint)
                    if connection.closed:
                        # The connection died between handshake and
                        # here — its on_close hook already ran, so an
                        # evict for it can never fire again.  Caching
                        # it would wedge the endpoint behind a dead
                        # entry; hand out a live racer if one slipped
                        # in, else surface the failure.
                        if (racer is not None and not racer.closed
                                and not racer.closing):
                            return racer
                        if racer is None:
                            self._locks.pop(endpoint, None)
                        raise CommFailure(
                            f"connection to {endpoint!r} closed during dial"
                        )
                    if racer is None or racer.closed or racer.closing:
                        self._connections[endpoint] = connection
                        self._last_used[endpoint] = self._clock()
                        return connection
                    # An evict dropped our dial lock mid-flight and a
                    # fresh dial won the endpoint; keep theirs.
                else:
                    racer = None
            try:
                connection.close()
            except CommFailure:
                pass
            if racer is not None:
                return racer
            raise SpaceShutdownError("space is shut down")

    def _dial(self, endpoint: str) -> Connection:
        """Build a connection for ``endpoint``, preferring its upgraded
        alternate (same-machine shm side door) when the hook offers
        one.  The alternate is an optimisation, never a requirement:
        any failure dialling it falls back to the endpoint as given."""
        if self._upgrade is not None:
            alternate = self._upgrade(endpoint)
            if alternate:
                try:
                    connection = self._connect(alternate)
                except (CommFailure, OSError):
                    pass
                else:
                    self.upgraded_dials += 1
                    return connection
        return self._connect(endpoint)

    def evict(self, connection: Connection) -> None:
        """Forget ``connection`` (typically from its on_close hook)."""
        with self._lock:
            for endpoint, cached in list(self._connections.items()):
                if cached is connection:
                    del self._connections[endpoint]
                    # Drop the endpoint's dial lock with it: entries
                    # must track *live* endpoints, not every endpoint
                    # ever contacted.
                    self._locks.pop(endpoint, None)
                    self._last_used.pop(endpoint, None)

    def sweep_idle(self) -> int:
        """Orderly-close connections unused for ``idle_ttl`` seconds.

        Returns how many closes were initiated.  Runs on a worker
        thread (the reactor's timer tick only schedules it): the
        orderly goodbye waits briefly for corked output to flush,
        which must not stall the I/O loop.  A candidate is removed
        from the cache *before* ``try_close_idle`` so no new ``get``
        can hand it out mid-close; if calls turn out to be in flight
        it is re-inserted untouched (unless a fresh dial already took
        the endpoint — then the in-flight caller keeps its direct
        reference and the connection retires when those calls drain).
        """
        ttl = self.idle_ttl
        if ttl is None:
            return 0
        now = self._clock()
        stale = []
        with self._lock:
            if self._shutdown:
                return 0
            for endpoint, connection in list(self._connections.items()):
                last = self._last_used.get(endpoint, now)
                if now - last >= ttl:
                    del self._connections[endpoint]
                    stale.append((endpoint, connection))
        reaped = 0
        for endpoint, connection in stale:
            if connection.try_close_idle():
                reaped += 1
                with self._lock:
                    if endpoint not in self._connections:
                        # No racer redialled; retire the endpoint's
                        # bookkeeping along with its connection.
                        self._locks.pop(endpoint, None)
                        self._last_used.pop(endpoint, None)
            else:
                with self._lock:
                    racer = self._connections.get(endpoint)
                    if (not self._shutdown and racer is None
                            and not connection.closed
                            and not connection.closing):
                        self._connections[endpoint] = connection
                        self._last_used[endpoint] = now
        self.idle_reaped += reaped
        return reaped

    def peek(self, endpoint: str) -> Optional[Connection]:
        with self._lock:
            return self._connections.get(endpoint)

    def close_all(self) -> None:
        with self._lock:
            self._shutdown = True
            connections = list(self._connections.values())
            self._connections.clear()
            self._locks.clear()
            self._last_used.clear()
        for connection in connections:
            try:
                connection.close()
            except CommFailure:
                pass

    def stats(self) -> dict:
        """Snapshot of cache gauges (surfaced via ``Space.stats()``)."""
        with self._lock:
            return {
                "connections": len(self._connections),
                "dials": self.dials,
                "idle_reaped": self.idle_reaped,
                "upgraded_dials": self.upgraded_dials,
                "busy_endpoints": sum(
                    1 for s in self._busy_strikes.values()
                    if s >= self.busy_strike_limit
                ),
                "busy_demotions": self.busy_demotions,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._connections)
