"""Surrogate streams: marshaling readers and writers.

The original system gave streams (Modula-3 ``Rd.T``/``Wr.T``) special
marshaling: passing one to another space produced a *surrogate stream*
there — a local buffered stream whose refill/flush operations are
remote calls against the concrete stream at its owner.  This module
reproduces that design on Python file objects:

* :func:`export_reader` / :func:`export_writer` wrap a local binary
  file object in a network object (:class:`ReaderStream` /
  :class:`WriterStream`) that can cross the wire like any reference;
* :func:`as_file` wraps the received surrogate back into an ordinary
  buffered Python file object, so application code on the client reads
  and writes locally, with the buffer refilled/flushed in big chunks
  over RPC — the paper's "buffered surrogate stream".

The stream objects are plain network objects, so their lifetime is
managed by the distributed collector like everything else: drop the
surrogate and the concrete stream is eventually closed and reclaimed.
"""

from __future__ import annotations

import io
from typing import BinaryIO

from repro.core.netobj import NetObj

#: Refill/flush unit for surrogate streams.  Large enough to amortise
#: the per-call cost (see experiment E3), small enough to stay prompt.
DEFAULT_CHUNK = 64 * 1024


class ReaderStream(NetObj):
    """The concrete (owner-side) readable stream."""

    def __init__(self, fileobj: BinaryIO):
        self._file = fileobj

    def read(self, size: int) -> bytes:
        return self._file.read(size)

    def seek(self, offset: int, whence: int = io.SEEK_SET) -> int:
        return self._file.seek(offset, whence)

    def seekable(self) -> bool:
        return self._file.seekable()

    def close(self) -> None:
        self._file.close()


class WriterStream(NetObj):
    """The concrete (owner-side) writable stream."""

    def __init__(self, fileobj: BinaryIO):
        self._file = fileobj

    def write(self, data: bytes) -> int:
        return self._file.write(data)

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        self._file.flush()
        self._file.close()


def export_reader(fileobj: BinaryIO) -> ReaderStream:
    """Wrap a local readable binary file for remote consumption."""
    return ReaderStream(fileobj)


def export_writer(fileobj: BinaryIO) -> WriterStream:
    """Wrap a local writable binary file for remote production."""
    return WriterStream(fileobj)


class _SurrogateRawReader(io.RawIOBase):
    """Raw adapter: every ``readinto`` is one remote refill call."""

    def __init__(self, stream):
        self._stream = stream

    def readable(self) -> bool:
        return True

    def readinto(self, buffer) -> int:
        chunk = self._stream.read(len(buffer))
        buffer[: len(chunk)] = chunk
        return len(chunk)

    def seekable(self) -> bool:
        try:
            return bool(self._stream.seekable())
        except Exception:  # noqa: BLE001 - remote failure: be honest
            return False

    def seek(self, offset: int, whence: int = io.SEEK_SET) -> int:
        return self._stream.seek(offset, whence)

    def close(self) -> None:
        # Base-class close flushes first, so the local side must be
        # retired before the remote stream is closed.
        if not self.closed:
            try:
                super().close()
            finally:
                self._stream.close()


class _SurrogateRawWriter(io.RawIOBase):
    """Raw adapter: every ``write`` flush is one remote call."""

    def __init__(self, stream):
        self._stream = stream

    def writable(self) -> bool:
        return True

    def write(self, data) -> int:
        return self._stream.write(bytes(data))

    def flush(self) -> None:
        super().flush()
        if not self.closed:
            self._stream.flush()

    def close(self) -> None:
        # Base-class close flushes through to the remote stream, so it
        # must run before the remote close (which flushes once more at
        # the owner).
        if not self.closed:
            try:
                super().close()
            finally:
                self._stream.close()


def as_file(stream, buffer_size: int = DEFAULT_CHUNK) -> BinaryIO:
    """Turn a (surrogate for a) stream object into a local file object.

    Readers come back as :class:`io.BufferedReader`, writers as
    :class:`io.BufferedWriter`; the buffer makes small application
    reads/writes local, with one RPC per ``buffer_size`` of data.
    Works on concrete streams too (same space), mirroring the object
    table's "no surrogate for the owner" rule.
    """
    if isinstance(stream, ReaderStream) or (
        hasattr(stream, "read") and not hasattr(stream, "write")
    ):
        return io.BufferedReader(
            _SurrogateRawReader(stream), buffer_size=buffer_size
        )
    if isinstance(stream, WriterStream) or hasattr(stream, "write"):
        return io.BufferedWriter(
            _SurrogateRawWriter(stream), buffer_size=buffer_size
        )
    raise TypeError(
        f"not a reader or writer stream: {type(stream).__qualname__}"
    )
