"""Exception hierarchy for the Network Objects runtime.

The original system distinguishes *network failures* (``NetObj.Error``
raised with ``CommFailure``), *protocol violations* and *application
exceptions propagated through a remote invocation*.  We mirror that
split: every exception raised by this library derives from
:class:`NetObjError`, and application-level exceptions that crossed the
wire are re-raised wrapped in :class:`RemoteError` so a caller can tell
a local failure from a remote one.
"""

from __future__ import annotations


class NetObjError(Exception):
    """Base class for all Network Objects errors."""


class MarshalError(NetObjError):
    """A value could not be pickled for transmission."""


class UnmarshalError(NetObjError):
    """A byte stream could not be unpickled (corrupt or unknown data)."""


class ProtocolError(NetObjError):
    """A peer violated the wire protocol (bad frame, bad handshake...)."""


class CommFailure(NetObjError):
    """A transport-level failure: connection refused, reset, or lost."""


class CallTimeout(CommFailure):
    """A remote invocation did not complete within its deadline."""


class ConnectionClosed(CommFailure):
    """The connection was closed (or orderly closing) before any byte
    of the request went on the wire — e.g. the idle sweep reaped it
    between the cache lookup and the send.  Unlike a generic
    :class:`CommFailure`, retrying on a fresh connection is safe:
    the peer never saw the call."""


class ServerBusy(NetObjError):
    """The peer shed this request under admission control.

    Deliberately *not* a :class:`CommFailure`: the connection is
    healthy, the peer simply refused the work.  Idempotent callers
    (``@reads`` methods, lease acquires, seqno-guarded CLEAN batches)
    retry automatically after a jittered backoff; everyone else sees
    the error and decides for themselves.

    Attributes
    ----------
    reason:
        Which budget was exhausted (``"queue full"``, ``"rate limit"``,
        ``"shutting down"``...).
    retry_after:
        The peer's backoff hint, in seconds.
    """

    def __init__(self, reason: str = "server busy",
                 retry_after: float = 0.05):
        super().__init__(f"server busy: {reason}")
        self.reason = reason
        self.retry_after = retry_after


class NoSuchObjectError(NetObjError):
    """A wireRep did not resolve to an object at its owner.

    This is the error a client observes when it invokes (or sends a
    dirty call for) an object that the owner has already reclaimed --
    the situation the distributed collector exists to prevent for live
    references.
    """


class NoSuchMethodError(NetObjError):
    """The target object has no such remote method."""


class NarrowingError(NetObjError):
    """No registered stub type matches the received typecode chain."""


class NameServiceError(NetObjError):
    """The agent (name server) could not satisfy a request."""


class SpaceShutdownError(NetObjError):
    """The local space has been shut down; no further calls possible."""


class RemoteError(NetObjError):
    """An exception was raised by the remote method implementation.

    Attributes
    ----------
    kind:
        The remote exception class name (e.g. ``"ValueError"``).
    message:
        The remote exception message.
    remote_traceback:
        The formatted traceback captured at the owner, for diagnostics.
    """

    def __init__(self, kind: str, message: str, remote_traceback: str = ""):
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.message = message
        self.remote_traceback = remote_traceback
