"""Length-prefixed message framing over byte streams.

Every transport in this library moves discrete frames.  For stream
transports (TCP) we prefix each payload with a 4-byte big-endian
length; datagram-like transports (in-process queues, the simulated
network) carry payloads natively and do not use this module.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional

from repro.errors import CommFailure, ProtocolError

_LEN_STRUCT = struct.Struct("!I")

#: Upper bound on a single frame.  Large enough for any benchmark in
#: this repository; small enough to fail fast on a corrupt length
#: prefix rather than attempting a multi-gigabyte allocation.
MAX_FRAME_SIZE = 64 * 1024 * 1024


def pack_frame(payload: bytes) -> bytes:
    """Return ``payload`` prefixed with its 4-byte length."""
    if len(payload) > MAX_FRAME_SIZE:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds limit")
    return _LEN_STRUCT.pack(len(payload)) + payload


def read_frame(recv_exact: Callable[[int], Optional[bytes]]) -> Optional[bytes]:
    """Read one frame using ``recv_exact(n)``.

    ``recv_exact`` must return exactly ``n`` bytes, or ``None`` on a
    clean end-of-stream *before any byte of this frame*.  Returns the
    payload, or ``None`` on clean EOF.
    """
    header = recv_exact(_LEN_STRUCT.size)
    if header is None:
        return None
    (length,) = _LEN_STRUCT.unpack(header)
    if length > MAX_FRAME_SIZE:
        raise ProtocolError(f"peer announced oversized frame ({length} bytes)")
    if length == 0:
        return b""
    payload = recv_exact(length)
    if payload is None:
        raise CommFailure("connection closed mid-frame")
    return payload


class FrameReader:
    """Incremental frame decoder for socket readers.

    Feed raw chunks with :meth:`feed`; completed frames come out of
    :meth:`frames`.  This keeps the socket read loop free of blocking
    ``recv_exact`` plumbing and copes with partial reads.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> None:
        self._buffer += chunk

    def frames(self):
        """Yield every complete frame currently buffered."""
        while True:
            if len(self._buffer) < _LEN_STRUCT.size:
                return
            (length,) = _LEN_STRUCT.unpack_from(self._buffer, 0)
            if length > MAX_FRAME_SIZE:
                raise ProtocolError(
                    f"peer announced oversized frame ({length} bytes)"
                )
            total = _LEN_STRUCT.size + length
            if len(self._buffer) < total:
                return
            payload = bytes(self._buffer[_LEN_STRUCT.size:total])
            del self._buffer[:total]
            yield payload
