"""Length-prefixed message framing over byte streams.

Every transport in this library moves discrete frames.  For stream
transports (TCP) we prefix each payload with a 4-byte big-endian
length; datagram-like transports (in-process queues, the simulated
network) carry payloads natively and do not use this module.
"""

from __future__ import annotations

import struct
import threading
from typing import Callable, List, Optional

from repro.errors import CommFailure, ProtocolError

_LEN_STRUCT = struct.Struct("!I")

#: Size of the length prefix every stream frame starts with.
FRAME_HEADER_SIZE = _LEN_STRUCT.size

#: Upper bound on a single frame.  Large enough for any benchmark in
#: this repository; small enough to fail fast on a corrupt length
#: prefix rather than attempting a multi-gigabyte allocation.
MAX_FRAME_SIZE = 64 * 1024 * 1024


def new_frame() -> bytearray:
    """A fresh frame buffer with header space reserved.

    Writers append the payload directly after the four reserved bytes
    and call :func:`finish_frame` once, so the whole message lives in
    a single buffer from encode to socket.
    """
    return bytearray(FRAME_HEADER_SIZE)


def finish_frame(frame: bytearray) -> bytearray:
    """Patch the length prefix of a buffer built on :func:`new_frame`.

    Returns the same buffer, now a complete frame ready for
    ``Channel.send_framed``.
    """
    length = len(frame) - FRAME_HEADER_SIZE
    if length < 0:
        raise ProtocolError("frame buffer is missing its header space")
    if length > MAX_FRAME_SIZE:
        raise ProtocolError(f"frame of {length} bytes exceeds limit")
    _LEN_STRUCT.pack_into(frame, 0, length)
    return frame


def pack_frame(payload) -> bytes:
    """Return ``payload`` prefixed with its 4-byte length.

    One-shot convenience (tests, raw baselines); the RPC hot path
    builds frames in place with :func:`new_frame`/:func:`finish_frame`
    instead.  Accepts any bytes-like payload.
    """
    frame = new_frame()
    frame += payload
    return bytes(finish_frame(frame))


class BufferPool:
    """A small pool of reusable frame buffers.

    ``acquire`` hands out a buffer pre-seeded with header space (as
    from :func:`new_frame`); ``release`` truncates it back to the bare
    header and keeps it for reuse, so steady-state sends perform no
    buffer allocation at all.  Oversized buffers are dropped on
    release rather than pinning megabytes in the pool.
    """

    def __init__(self, max_buffers: int = 8,
                 max_retained: int = 1 << 20) -> None:
        self._max_buffers = max_buffers
        self._max_retained = max_retained
        self._lock = threading.Lock()
        self._buffers: List[bytearray] = []

    def acquire(self) -> bytearray:
        with self._lock:
            if self._buffers:
                return self._buffers.pop()
        return new_frame()

    def release(self, buffer: bytearray) -> None:
        if len(buffer) > self._max_retained:
            return
        del buffer[FRAME_HEADER_SIZE:]
        with self._lock:
            if len(self._buffers) < self._max_buffers:
                self._buffers.append(buffer)


def read_frame(recv_exact: Callable[[int], Optional[bytes]]) -> Optional[bytes]:
    """Read one frame using ``recv_exact(n)``.

    ``recv_exact`` must return exactly ``n`` bytes, or ``None`` on a
    clean end-of-stream *before any byte of this frame*.  Returns the
    payload, or ``None`` on clean EOF.
    """
    header = recv_exact(_LEN_STRUCT.size)
    if header is None:
        return None
    (length,) = _LEN_STRUCT.unpack(header)
    if length > MAX_FRAME_SIZE:
        raise ProtocolError(f"peer announced oversized frame ({length} bytes)")
    if length == 0:
        return b""
    payload = recv_exact(length)
    if payload is None:
        raise CommFailure("connection closed mid-frame")
    return payload


class FrameAssembler:
    """Resumable frame reassembly for nonblocking stream sockets.

    The selector-driven read path cannot loop a blocking ``recv_exact``
    over the stream, so the framing state machine is turned inside out:
    the reactor asks :meth:`next_buffer` where the next bytes belong,
    fills it with ``recv_into``, and reports how many landed via
    :meth:`advance`, which hands back a completed payload once the
    frame closes.  PR 1's copy discipline is preserved exactly — the
    header accumulates in a reused 4-byte scratch buffer and each
    payload is the read path's *single payload-sized allocation*,
    filled in place across however many readable events it takes.

    A reader that sees end-of-stream should consult :attr:`mid_frame`
    to distinguish a clean close (between frames) from truncation.
    """

    __slots__ = ("_header", "_header_view", "_filled", "_payload",
                 "_payload_view")

    def __init__(self) -> None:
        self._header = bytearray(FRAME_HEADER_SIZE)
        self._header_view = memoryview(self._header)
        self._filled = 0
        self._payload: Optional[bytearray] = None
        self._payload_view: Optional[memoryview] = None

    @property
    def mid_frame(self) -> bool:
        """True when some bytes of an unfinished frame have arrived."""
        return self._filled > 0 or self._payload is not None

    def next_buffer(self) -> memoryview:
        """The view the next ``recv_into`` must fill (never empty)."""
        if self._payload is None:
            return self._header_view[self._filled:]
        return self._payload_view[self._filled:]

    def advance(self, count: int) -> Optional[bytearray]:
        """Record ``count`` bytes landing in :meth:`next_buffer`'s view.

        Returns the completed frame payload, or ``None`` while the
        frame is still partial.  Raises :class:`ProtocolError` on an
        oversized length prefix (the connection must drop).
        """
        self._filled += count
        if self._payload is None:
            if self._filled < FRAME_HEADER_SIZE:
                return None
            (length,) = _LEN_STRUCT.unpack(self._header)
            self._filled = 0
            if length > MAX_FRAME_SIZE:
                raise ProtocolError(
                    f"peer announced oversized frame ({length} bytes)"
                )
            if length == 0:
                return bytearray()
            self._payload = bytearray(length)
            self._payload_view = memoryview(self._payload)
            return None
        if self._filled < len(self._payload):
            return None
        payload = self._payload
        self._payload_view = None  # exported buffers must not hold views
        self._payload = None
        self._filled = 0
        return payload


class FrameReader:
    """Incremental frame decoder for socket readers.

    Feed raw chunks with :meth:`feed`; completed frames come out of
    :meth:`frames`.  This keeps the socket read loop free of blocking
    ``recv_exact`` plumbing and copes with partial reads.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> None:
        self._buffer += chunk

    def frames(self):
        """Yield every complete frame currently buffered."""
        while True:
            if len(self._buffer) < _LEN_STRUCT.size:
                return
            (length,) = _LEN_STRUCT.unpack_from(self._buffer, 0)
            if length > MAX_FRAME_SIZE:
                raise ProtocolError(
                    f"peer announced oversized frame ({length} bytes)"
                )
            total = _LEN_STRUCT.size + length
            if len(self._buffer) < total:
                return
            payload = bytes(self._buffer[_LEN_STRUCT.size:total])
            del self._buffer[:total]
            yield payload
