"""Unique identifiers for address spaces.

The paper identifies each address space (process) by a globally unique
``SpaceID`` embedded in every wireRep.  The original system derived it
from the host address, a timestamp and a process id; uniqueness (not
structure) is what the algorithms rely on, so we use 128 random bits
plus a human-readable nickname that travels with the id purely for
debuggability.
"""

from __future__ import annotations

import os
import struct
import threading
from dataclasses import dataclass, field

from repro.errors import UnmarshalError

_SPACE_ID_STRUCT = struct.Struct("!QQ")

_counter_lock = threading.Lock()
_counter = 0


@dataclass(frozen=True, order=True)
class SpaceID:
    """Globally unique identifier of an address space.

    Two ``SpaceID`` values compare equal iff their 128-bit payload is
    equal; the ``nickname`` is ignored for equality and ordering so
    that a surrogate created from a wire message (which carries no
    nickname) still matches the owner's identity.
    """

    hi: int
    lo: int
    nickname: str = field(default="", compare=False)

    # Hand-written so the decode hot path (which compares interned
    # instances, see ``intern_from_wire``) short-circuits on identity
    # instead of building comparison tuples.  Semantics are identical
    # to the dataclass-generated pair: the nickname never participates.
    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if isinstance(other, SpaceID):
            return self.hi == other.hi and self.lo == other.lo
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.hi, self.lo))

    def to_bytes(self) -> bytes:
        return _SPACE_ID_STRUCT.pack(self.hi, self.lo)

    @classmethod
    def from_bytes(cls, data: bytes, nickname: str = "") -> "SpaceID":
        if len(data) != _SPACE_ID_STRUCT.size:
            raise UnmarshalError(f"SpaceID needs 16 bytes, got {len(data)}")
        hi, lo = _SPACE_ID_STRUCT.unpack(data)
        return cls(hi, lo, nickname)

    def short(self) -> str:
        """A short hex form for logs, e.g. ``a3f29c01``."""
        return f"{self.hi:016x}"[:8]

    def __str__(self) -> str:
        if self.nickname:
            return f"{self.nickname}[{self.short()}]"
        return f"space[{self.short()}]"


SPACE_ID_WIRE_SIZE = _SPACE_ID_STRUCT.size

#: Interning table for ids seen on the wire.  A process talks to a
#: handful of peers but decodes a wireRep on every incoming call, so
#: decode returns one shared instance per identity: the table lookup
#: replaces struct-unpack + construction, and downstream equality
#: checks short-circuit on ``is``.  Bounded defensively — input is
#: remote — by discarding the table if a flood of distinct ids ever
#: fills it (correctness never depends on interning, only speed).
_INTERN_CAP = 4096
_interned: dict = {}


def intern_space_id(raw) -> SpaceID:
    """The shared :class:`SpaceID` for 16 wire bytes (``raw`` may be
    any bytes-like; a memoryview is copied only on a table miss)."""
    sid = _interned.get(raw if type(raw) is bytes else bytes(raw))
    if sid is not None:
        return sid
    key = bytes(raw)
    sid = SpaceID.from_bytes(key)
    if len(_interned) >= _INTERN_CAP:
        _interned.clear()
    _interned[key] = sid
    return sid


def intern_existing(sid: SpaceID) -> None:
    """Pre-seed the intern table with a locally minted id, so wire
    decodes of our own identity return the very same instance."""
    _interned[sid.to_bytes()] = sid


def fresh_space_id(nickname: str = "") -> SpaceID:
    """Mint a new, globally unique :class:`SpaceID`.

    Combines OS randomness with a process-local counter so ids remain
    unique even under a patched/deterministic ``os.urandom``.
    """
    global _counter
    with _counter_lock:
        _counter += 1
        count = _counter
    raw = os.urandom(16)
    hi = int.from_bytes(raw[:8], "big")
    lo = int.from_bytes(raw[8:], "big") ^ (os.getpid() << 32) ^ count
    return SpaceID(hi, lo, nickname)
