"""LEB128-style unsigned varints used throughout the pickle format.

Small non-negative integers dominate the wire traffic of this system
(lengths, counts, indices), so we encode them in the classic
7-bits-per-byte little-endian format also used by protocol buffers.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import UnmarshalError


def write_uvarint(out: bytearray, value: int) -> None:
    """Append ``value`` (a non-negative int) to ``out`` as a varint."""
    if 0 <= value < 0x80:
        # Lengths, counts and memo ids are almost always < 128; this
        # single-byte path dominates the encode hot loop.
        out.append(value)
        return
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uvarint(data, offset: int) -> Tuple[int, int]:
    """Decode a varint from ``data`` at ``offset``.

    ``data`` may be any indexable bytes-like object (``bytes``,
    ``bytearray`` or ``memoryview``) — the zero-copy receive path
    decodes straight out of the frame buffer.  Returns
    ``(value, new_offset)``.  Raises :class:`UnmarshalError` on
    truncated input or on encodings longer than 10 bytes (which cannot
    arise from :func:`write_uvarint` for values below 2**70 and guards
    against maliciously long encodings).
    """
    if offset >= len(data):
        raise UnmarshalError("truncated varint")
    byte = data[offset]
    if not byte & 0x80:
        return byte, offset + 1
    result = 0
    shift = 0
    start = offset
    while True:
        if offset >= len(data):
            raise UnmarshalError("truncated varint")
        if offset - start >= 10:
            raise UnmarshalError("varint too long")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
