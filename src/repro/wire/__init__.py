"""Wire-level building blocks: space identifiers, wireReps and framing.

A *wireRep* is the network representation of an object reference: the
unique identifier of the owner space plus the index of the object at
the owner.  Everything that crosses a channel in this system is a
length-prefixed frame whose payload begins with a one-byte message tag
(see :mod:`repro.wire.protocol`).
"""

from repro.wire.ids import SpaceID, fresh_space_id
from repro.wire.wirerep import WireRep
from repro.wire.framing import (
    BufferPool,
    FRAME_HEADER_SIZE,
    FrameReader,
    MAX_FRAME_SIZE,
    finish_frame,
    new_frame,
    pack_frame,
    read_frame,
)
from repro.wire import protocol
from repro.wire.varint import read_uvarint, write_uvarint

__all__ = [
    "SpaceID",
    "fresh_space_id",
    "WireRep",
    "BufferPool",
    "FRAME_HEADER_SIZE",
    "FrameReader",
    "MAX_FRAME_SIZE",
    "finish_frame",
    "new_frame",
    "pack_frame",
    "read_frame",
    "protocol",
    "read_uvarint",
    "write_uvarint",
]
