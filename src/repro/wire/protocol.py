"""Protocol constants: message tags and the protocol version.

The first byte of every frame payload is a message tag from this
module.  Tags 0x0x are connection management, 0x1x are mutator (RPC)
traffic, 0x2x are distributed-GC traffic.  The split mirrors the
paper's architecture: the collector's dirty/clean/ack traffic is
ordinary messages on the same channels as method invocations.
"""

from __future__ import annotations

#: Version 6: admission control — the BUSY shed frame, a reply that
#: tells the caller the request was refused (not failed) with a
#: retry-after hint.  Version 5 added the call fast lane — method-id
#: interning (CALL_BIND/CALL_BOUND), typed scalar argument/result
#: frames (CALL_FAST/RESULT_FAST) that bypass the pickler, and inline
#: reactor dispatch for ``@quick`` methods.  Version 4 added the
#: read-lease frames (LEASE_REQ .. LEASE_INVALIDATE_ACK).  Version 3
#: added CLEAN_BATCH/CLEAN_BATCH_ACK (batched collector traffic).
#: Version 2 introduced trailing pickles on CALL/RESULT (no varint
#: length prefix), enabling single-buffer encode.
PROTOCOL_VERSION = 6

#: Oldest version we still speak.  HELLO negotiates down to
#: ``min(ours, peer's)``; below this floor the handshake is rejected.
#: A v2 peer simply never sees a CLEAN_BATCH frame.
MIN_PROTOCOL_VERSION = 2

# --- connection management -------------------------------------------------
HELLO = 0x01          # handshake: protocol version + SpaceID + nickname
HELLO_ACK = 0x02      # handshake reply
BYE = 0x03            # orderly shutdown notice

# --- mutator (RPC) ---------------------------------------------------------
CALL = 0x10           # method invocation request
RESULT = 0x11         # successful completion, with pickled result
FAULT = 0x12          # remote exception, with kind/message/traceback

# --- call fast lane (v5) ---------------------------------------------------
CALL_BIND = 0x13      # first call through a binding: METHOD_BIND piggybacked
                      # on the CALL (method_id + wireRep + name + args pickle)
CALL_BOUND = 0x14     # steady-state bound call: call_id + method_id + pickle
CALL_FAST = 0x15      # bound call with typed scalar args (no pickle)
RESULT_FAST = 0x16    # typed scalar result (no pickle)

# --- admission control (v6) ------------------------------------------------
BUSY = 0x17           # request shed under overload: reason + retry-after hint

# --- distributed garbage collector ----------------------------------------
DIRTY = 0x20          # client registers itself in the owner's dirty set
DIRTY_ACK = 0x21      # owner acknowledges the dirty call
CLEAN = 0x22          # client leaves the owner's dirty set
CLEAN_ACK = 0x23      # owner acknowledges the clean call
COPY_ACK = 0x24       # receiver acknowledges receipt of a reference copy
PING = 0x25           # owner probes a client believed to hold surrogates
PING_ACK = 0x26       # client liveness reply
CLEAN_BATCH = 0x27    # several clean calls for one owner in one frame (v3)
CLEAN_BATCH_ACK = 0x28  # owner acknowledges a whole clean batch (v3)

# --- read leases (v4) ------------------------------------------------------
LEASE_REQ = 0x30        # client asks the owner for a read lease
LEASE_GRANT = 0x31      # owner's reply: lease id/ttl/version + state snapshot
LEASE_RENEW = 0x32      # client refreshes an expired/expiring lease
LEASE_RELEASE = 0x33    # client gives up a lease early (one-way)
LEASE_INVALIDATE = 0x34  # owner tells a holder its cached state is stale
LEASE_INVALIDATE_ACK = 0x35  # holder confirms it dropped the cached state

_NAMES = {
    HELLO: "HELLO",
    HELLO_ACK: "HELLO_ACK",
    BYE: "BYE",
    CALL: "CALL",
    RESULT: "RESULT",
    FAULT: "FAULT",
    CALL_BIND: "CALL_BIND",
    CALL_BOUND: "CALL_BOUND",
    CALL_FAST: "CALL_FAST",
    RESULT_FAST: "RESULT_FAST",
    BUSY: "BUSY",
    DIRTY: "DIRTY",
    DIRTY_ACK: "DIRTY_ACK",
    CLEAN: "CLEAN",
    CLEAN_ACK: "CLEAN_ACK",
    COPY_ACK: "COPY_ACK",
    PING: "PING",
    PING_ACK: "PING_ACK",
    CLEAN_BATCH: "CLEAN_BATCH",
    CLEAN_BATCH_ACK: "CLEAN_BATCH_ACK",
    LEASE_REQ: "LEASE_REQ",
    LEASE_GRANT: "LEASE_GRANT",
    LEASE_RENEW: "LEASE_RENEW",
    LEASE_RELEASE: "LEASE_RELEASE",
    LEASE_INVALIDATE: "LEASE_INVALIDATE",
    LEASE_INVALIDATE_ACK: "LEASE_INVALIDATE_ACK",
}

#: Tags that belong to the distributed collector rather than the mutator.
GC_TAGS = frozenset({DIRTY, DIRTY_ACK, CLEAN, CLEAN_ACK, COPY_ACK, PING,
                     PING_ACK, CLEAN_BATCH, CLEAN_BATCH_ACK})

#: Tags of the v4 read-lease protocol.  Never emitted to a peer whose
#: negotiated version is below 4 — the surrogate silently falls back to
#: per-call RPC instead.
LEASE_TAGS = frozenset({LEASE_REQ, LEASE_GRANT, LEASE_RENEW, LEASE_RELEASE,
                        LEASE_INVALIDATE, LEASE_INVALIDATE_ACK})

#: Tags of the v5 call fast lane.  Never emitted to a peer whose
#: negotiated version is below 5 — calls toward such a peer stay
#: classic CALL/RESULT frames.
FASTLANE_TAGS = frozenset({CALL_BIND, CALL_BOUND, CALL_FAST, RESULT_FAST})

#: First protocol version that understands the BUSY shed frame.  To an
#: older peer an unknown tag is a protocol violation (the decoder
#: raises and the connection is torn down), so sheds toward pre-v6
#: peers travel as a FAULT with kind ``"ServerBusy"`` instead — every
#: version since the floor understands FAULT.
BUSY_VERSION = 6


def tag_name(tag: int) -> str:
    """Human-readable name of a message tag (for logs and errors)."""
    return _NAMES.get(tag, f"UNKNOWN(0x{tag:02x})")
