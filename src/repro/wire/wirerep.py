"""The wire representation of a network object reference.

From the paper: *"A network object is marshaled by transmitting its
wireRep, which consists of a unique identifier for the owner process,
plus the index of the object at the owner."*
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnmarshalError
from repro.wire.ids import SPACE_ID_WIRE_SIZE, SpaceID, intern_space_id
from repro.wire.varint import read_uvarint, write_uvarint

#: Index of the distinguished *special object* every space exports at
#: birth.  Importers use it to bootstrap: the agent (name server) is
#: reachable through the special object without any prior reference.
SPECIAL_OBJECT_INDEX = 0


@dataclass(frozen=True, order=True)
class WireRep:
    """(owner SpaceID, object index) — the identity of a network object."""

    owner: SpaceID
    index: int

    # Identity-first equality: decoded wireReps share interned owner
    # ids (see ``from_wire``), so the common owner check in the serve
    # path is two ``is`` tests instead of tuple construction.
    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if isinstance(other, WireRep):
            return self.index == other.index and self.owner == other.owner
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.owner, self.index))

    def to_wire(self, out: bytearray) -> None:
        out += self.owner.to_bytes()
        write_uvarint(out, self.index)

    @classmethod
    def from_wire(cls, data: bytes, offset: int) -> "tuple[WireRep, int]":
        end = offset + SPACE_ID_WIRE_SIZE
        if end > len(data):
            raise UnmarshalError("truncated wireRep")
        owner = intern_space_id(data[offset:end])
        index, offset = read_uvarint(data, end)
        return cls(owner, index), offset

    def is_special(self) -> bool:
        return self.index == SPECIAL_OBJECT_INDEX

    def __str__(self) -> str:
        return f"{self.owner}#{self.index}"
