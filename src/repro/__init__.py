"""Network Objects (SOSP 1993), reproduced in Python.

A distributed object system: subclass :class:`NetObj` to define remote
interfaces, host instances in a :class:`Space`, and invoke them from
other spaces through automatically generated surrogates.  General data
crosses the wire via a from-scratch, graph-preserving pickle format;
object references cross by wireRep; and Birrell's distributed
reference-listing garbage collector keeps every remotely referenced
object alive — and reclaims it promptly once the last remote reference
dies.

Quickstart::

    from repro import NetObj, Space

    class Counter(NetObj):
        def __init__(self):
            self.n = 0
        def increment(self):
            self.n += 1
            return self.n

    server = Space("server", listen=["tcp://127.0.0.1:0"])
    server.serve("counter", Counter())

    client = Space("client")
    counter = client.import_object(server.endpoints[0], "counter")
    assert counter.increment() == 1
"""

from repro.core import (
    GcConfig, NetObj, Space, Surrogate, async_call, quick, reads, wiretypes,
)
from repro.rpc.futures import CallFuture, RemoteFuture
from repro.errors import (
    CallTimeout,
    CommFailure,
    MarshalError,
    NameServiceError,
    NarrowingError,
    NetObjError,
    NoSuchMethodError,
    NoSuchObjectError,
    ProtocolError,
    RemoteError,
    SpaceShutdownError,
    UnmarshalError,
)
from repro.marshal import register_struct
from repro.naming import Agent, MeshAgent, MeshConfig, NameServer, ReplicatedAgent

__version__ = "1.0.0"

__all__ = [
    "Agent",
    "CallFuture",
    "CallTimeout",
    "CommFailure",
    "GcConfig",
    "MarshalError",
    "MeshAgent",
    "MeshConfig",
    "NameServer",
    "NameServiceError",
    "NarrowingError",
    "NetObj",
    "NetObjError",
    "NoSuchMethodError",
    "NoSuchObjectError",
    "ProtocolError",
    "RemoteError",
    "RemoteFuture",
    "ReplicatedAgent",
    "Space",
    "SpaceShutdownError",
    "Surrogate",
    "UnmarshalError",
    "async_call",
    "quick",
    "reads",
    "register_struct",
    "wiretypes",
    "__version__",
]
