"""The heap: objects, fields, roots, allocation and collection."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Set, Union

from repro.localheap.reachability import reachable_from


@dataclass(frozen=True)
class RemoteRef:
    """A leaf heap value naming a remote reference (by index)."""

    ref: int


FieldValue = Union[int, RemoteRef, None]  # local object id, remote ref, NULL


class Heap:
    """An explicit heap for one simulated process.

    Objects are identified by integers and hold a fixed-free list of
    fields; each field is NULL, a local object id, or a
    :class:`RemoteRef`.  Roots are distinguished object ids (stack
    slots, globals).  ``collect`` is a mark-sweep over the object
    graph; ``reachable_remote_refs`` answers the only question the
    distributed collector asks of the local one.
    """

    def __init__(self) -> None:
        self._objects: Dict[int, List[FieldValue]] = {}
        self._roots: Set[int] = set()
        self._ids = itertools.count(1)
        self.collections = 0
        self.collected_total = 0

    # -- mutation -----------------------------------------------------------------

    def allocate(self, nfields: int = 2, root: bool = False) -> int:
        obj = next(self._ids)
        self._objects[obj] = [None] * nfields
        if root:
            self._roots.add(obj)
        return obj

    def add_root(self, obj: int) -> None:
        self._check(obj)
        self._roots.add(obj)

    def remove_root(self, obj: int) -> None:
        self._roots.discard(obj)

    def set_field(self, obj: int, slot: int, value: FieldValue) -> None:
        self._check(obj)
        if isinstance(value, int):
            self._check(value)
        self._objects[obj][slot] = value

    def _check(self, obj: int) -> None:
        if obj not in self._objects:
            raise KeyError(f"no such heap object {obj}")

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, obj: int) -> bool:
        return obj in self._objects

    def roots(self) -> Set[int]:
        return set(self._roots)

    def fields(self, obj: int) -> List[FieldValue]:
        self._check(obj)
        return list(self._objects[obj])

    def edges(self):
        """All (src, dst) local edges — for reference checks."""
        for obj, fields in self._objects.items():
            for value in fields:
                if isinstance(value, int):
                    yield (obj, value)

    def reachable_objects(self) -> Set[int]:
        def successors(obj: int):
            return [
                value for value in self._objects[obj]
                if isinstance(value, int)
            ]

        return reachable_from(self._roots, successors)

    def reachable_remote_refs(self) -> Set[int]:
        """Remote reference indices held in live objects."""
        live = self.reachable_objects()
        refs: Set[int] = set()
        for obj in live:
            for value in self._objects[obj]:
                if isinstance(value, RemoteRef):
                    refs.add(value.ref)
        return refs

    # -- collection -----------------------------------------------------------------

    def collect(self) -> Set[int]:
        """Mark-sweep; returns the ids reclaimed."""
        live = self.reachable_objects()
        dead = set(self._objects) - live
        for obj in dead:
            del self._objects[obj]
        self._roots &= live
        self.collections += 1
        self.collected_total += len(dead)
        return dead
