"""Root-based reachability (iterative mark)."""

from __future__ import annotations

from typing import Callable, Iterable, Set, TypeVar

Node = TypeVar("Node")


def reachable_from(
    roots: Iterable[Node],
    successors: Callable[[Node], Iterable[Node]],
) -> Set[Node]:
    """The transitive closure of ``successors`` from ``roots``.

    Iterative (no recursion limit concerns for deep object chains) and
    each node's successors are expanded exactly once.
    """
    marked: Set[Node] = set(roots)
    stack = list(marked)
    while stack:
        node = stack.pop()
        for successor in successors(node):
            if successor not in marked:
                marked.add(successor)
                stack.append(successor)
    return marked
