"""A small explicit local heap with root-based reachability.

The distributed collector's client side is driven by the *local*
collector: a clean call happens when the local collector finds a
surrogate unreachable.  The runtime uses CPython's collector for
this; the model and the property tests need a deterministic stand-in,
which this package provides — objects, fields, roots, mark-based
reachability and a mark-sweep collect, with remote references as
first-class leaf values so "which remote refs are locally reachable"
is a direct query.
"""

from repro.localheap.heap import Heap, RemoteRef
from repro.localheap.reachability import reachable_from

__all__ = ["Heap", "RemoteRef", "reachable_from"]
