"""The unpickler: bytes → Python values.

Decoding mirrors :class:`~repro.marshal.pickler.Pickler` exactly,
including the memo-id assignment order.  Mutable containers are entered
into the memo *before* their elements are decoded, so cycles and
sharing reconstruct faithfully.  Tuples and frozensets reserve a memo
slot first and fill it after construction; a back-reference into an
unfilled slot (a genuinely cyclic tuple, which CPython cannot build
through public APIs anyway) is reported as corrupt data.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from repro.errors import UnmarshalError
from repro.marshal import tags
from repro.marshal.pickler import MAX_DEPTH, NetObjHandler
from repro.marshal.registry import StructRegistry, global_registry
from repro.wire.varint import read_uvarint

_FLOAT_STRUCT = struct.Struct("!d")

_UNFILLED = object()


class Unpickler:
    """Decoder for pickles produced by :class:`Pickler`.

    Stateless between messages, so one instance can be pooled and
    reused; :meth:`bind` swaps the per-message netobj handler.
    ``loads`` accepts any bytes-like input — the zero-copy receive
    path hands it a ``memoryview`` into the frame buffer, and payload
    bytes are only materialised where user code will hold them (BYTES
    values, decoded strings).
    """

    def __init__(
        self,
        registry: Optional[StructRegistry] = None,
        netobj_handler: Optional[NetObjHandler] = None,
    ):
        self._registry = registry if registry is not None else global_registry
        self._handler = netobj_handler

    def bind(self, netobj_handler: Optional[NetObjHandler]) -> "Unpickler":
        """Attach the handler for the next message; returns ``self``."""
        self._handler = netobj_handler
        return self

    def loads(self, data) -> object:
        """Decode one value from ``data``; all bytes must be consumed."""
        memo: List[object] = []
        value, offset = self._read(data, 0, memo)
        if offset != len(data):
            raise UnmarshalError(
                f"trailing garbage: {len(data) - offset} bytes after pickle"
            )
        return value

    # -- decoders -------------------------------------------------------------

    def _read(self, data: bytes, offset: int, memo: List[object],
              depth: int = 0):
        if depth > MAX_DEPTH:
            raise UnmarshalError(
                f"pickle nesting exceeds {MAX_DEPTH} levels"
            )
        if offset >= len(data):
            raise UnmarshalError("truncated pickle")
        tag = data[offset]
        offset += 1

        if tag == tags.NONE:
            return None, offset
        if tag == tags.TRUE:
            return True, offset
        if tag == tags.FALSE:
            return False, offset
        if tag == tags.INT_POS:
            return read_uvarint(data, offset)
        if tag == tags.INT_NEG:
            magnitude, offset = read_uvarint(data, offset)
            return -1 - magnitude, offset
        if tag == tags.INT_BIG:
            length, offset = read_uvarint(data, offset)
            raw, offset = self._take(data, offset, length)
            return int.from_bytes(raw, "little", signed=True), offset
        if tag == tags.FLOAT:
            raw, offset = self._take(data, offset, _FLOAT_STRUCT.size)
            return _FLOAT_STRUCT.unpack(raw)[0], offset
        if tag == tags.STR:
            length, offset = read_uvarint(data, offset)
            raw, offset = self._take(data, offset, length)
            try:
                value = str(raw, "utf-8")
            except UnicodeDecodeError as exc:
                raise UnmarshalError(f"invalid UTF-8 in string: {exc}") from exc
            memo.append(value)
            return value, offset
        if tag == tags.BYTES:
            length, offset = read_uvarint(data, offset)
            raw, offset = self._take(data, offset, length)
            # Materialise: the caller keeps this value, the frame
            # buffer it is a view into does not outlive the message.
            value = bytes(raw)
            memo.append(value)
            return value, offset
        if tag == tags.BYTEARRAY:
            length, offset = read_uvarint(data, offset)
            raw, offset = self._take(data, offset, length)
            value = bytearray(raw)
            memo.append(value)
            return value, offset
        if tag == tags.LIST:
            count, offset = read_uvarint(data, offset)
            value: list = []
            memo.append(value)
            for _ in range(count):
                item, offset = self._read(data, offset, memo, depth + 1)
                value.append(item)
            return value, offset
        if tag == tags.TUPLE:
            count, offset = read_uvarint(data, offset)
            slot = len(memo)
            memo.append(_UNFILLED)
            items = []
            for _ in range(count):
                item, offset = self._read(data, offset, memo, depth + 1)
                items.append(item)
            value = tuple(items)
            memo[slot] = value
            return value, offset
        if tag == tags.DICT:
            count, offset = read_uvarint(data, offset)
            value: dict = {}
            memo.append(value)
            for _ in range(count):
                key, offset = self._read(data, offset, memo, depth + 1)
                item, offset = self._read(data, offset, memo, depth + 1)
                value[key] = item
            return value, offset
        if tag == tags.SET:
            count, offset = read_uvarint(data, offset)
            value: set = set()
            memo.append(value)
            for _ in range(count):
                item, offset = self._read(data, offset, memo, depth + 1)
                value.add(item)
            return value, offset
        if tag == tags.FROZENSET:
            count, offset = read_uvarint(data, offset)
            slot = len(memo)
            memo.append(_UNFILLED)
            items = []
            for _ in range(count):
                item, offset = self._read(data, offset, memo, depth + 1)
                items.append(item)
            value = frozenset(items)
            memo[slot] = value
            return value, offset
        if tag == tags.REF:
            memo_id, offset = read_uvarint(data, offset)
            if memo_id >= len(memo):
                raise UnmarshalError(f"dangling memo reference {memo_id}")
            value = memo[memo_id]
            if value is _UNFILLED:
                raise UnmarshalError(
                    f"back-reference into unconstructed value {memo_id}"
                )
            return value, offset
        if tag == tags.STRUCT:
            slot = len(memo)
            memo.append(_UNFILLED)
            name, offset = self._read(data, offset, memo, depth + 1)
            if not isinstance(name, str):
                raise UnmarshalError("struct name is not a string")
            codec = self._registry.codec_for_name(name)
            count, offset = read_uvarint(data, offset)
            if codec.factory is None:
                # Two-phase build: instance visible in the memo while
                # its fields decode, so structs may sit on cycles.
                value = codec.precreate()
                memo[slot] = value
                values = []
                for _ in range(count):
                    item, offset = self._read(data, offset, memo, depth + 1)
                    values.append(item)
                codec.fill(value, values)
            else:
                values = []
                for _ in range(count):
                    item, offset = self._read(data, offset, memo, depth + 1)
                    values.append(item)
                value = codec.assemble(values)
                memo[slot] = value
            return value, offset
        if tag == tags.NETOBJ:
            if self._handler is None:
                raise UnmarshalError(
                    "pickle contains a network object but no handler is set"
                )
            length, offset = read_uvarint(data, offset)
            raw, offset = self._take(data, offset, length)
            value = self._handler.unmarshal(raw)
            memo.append(value)
            return value, offset

        raise UnmarshalError(f"unknown pickle tag {tags.tag_name(tag)}")

    @staticmethod
    def _take(data, offset: int, length: int):
        end = offset + length
        if end > len(data):
            raise UnmarshalError("truncated pickle payload")
        return data[offset:end], end


def loads(
    data,
    registry: Optional[StructRegistry] = None,
    netobj_handler: Optional[NetObjHandler] = None,
) -> object:
    """One-shot convenience wrapper around :class:`Unpickler`."""
    return Unpickler(registry, netobj_handler).loads(data)


# -- structural prescan ---------------------------------------------------------

#: Tags whose payload is a single uvarint to skip.
_SKIP_UVARINT = frozenset({tags.INT_POS, tags.INT_NEG, tags.REF})
#: Tags whose payload is a uvarint length followed by that many bytes.
_SKIP_SIZED = frozenset({tags.INT_BIG, tags.STR, tags.BYTES, tags.BYTEARRAY})
#: Container tags: uvarint count followed by that many child values.
_SKIP_COUNTED = frozenset({tags.LIST, tags.TUPLE, tags.SET, tags.FROZENSET})


def scan_netobj_payloads(data) -> list:
    """Collect every NETOBJ payload in a pickle without decoding values.

    A structural walk over the tag grammar: containers are traversed,
    scalars skipped by length, and each ``NETOBJ`` payload slice is
    collected (views into ``data``, valid only while the frame buffer
    lives).  This powers the dirty-call prefetch — the caller can see
    which remote references a message carries *before* the sequential
    unpickle walks into them.

    Best effort by design: any malformed input returns ``[]`` and the
    real decode reports the corruption properly.  Duplicate references
    appear once (later occurrences are ``REF`` back-references).
    """
    found: list = []
    try:
        if _scan(data, 0, found, 0) != len(data):
            return []
    except Exception:  # noqa: BLE001 - malformed input is the decode's problem
        return []
    return found


def _scan(data, offset: int, found: list, depth: int) -> int:
    if depth > MAX_DEPTH:
        raise UnmarshalError(f"pickle nesting exceeds {MAX_DEPTH} levels")
    tag = data[offset]
    offset += 1
    if tag in (tags.NONE, tags.TRUE, tags.FALSE):
        return offset
    if tag in _SKIP_UVARINT:
        return read_uvarint(data, offset)[1]
    if tag in _SKIP_SIZED:
        length, offset = read_uvarint(data, offset)
        end = offset + length
        if end > len(data):
            raise UnmarshalError("truncated pickle payload")
        return end
    if tag == tags.FLOAT:
        return offset + _FLOAT_STRUCT.size
    if tag in _SKIP_COUNTED:
        count, offset = read_uvarint(data, offset)
        for _ in range(count):
            offset = _scan(data, offset, found, depth + 1)
        return offset
    if tag == tags.DICT:
        count, offset = read_uvarint(data, offset)
        for _ in range(2 * count):
            offset = _scan(data, offset, found, depth + 1)
        return offset
    if tag == tags.STRUCT:
        offset = _scan(data, offset, found, depth + 1)  # the type name
        count, offset = read_uvarint(data, offset)
        for _ in range(count):
            offset = _scan(data, offset, found, depth + 1)
        return offset
    if tag == tags.NETOBJ:
        length, offset = read_uvarint(data, offset)
        end = offset + length
        if end > len(data):
            raise UnmarshalError("truncated pickle payload")
        found.append(data[offset:end])
        return end
    raise UnmarshalError(f"unknown pickle tag {tags.tag_name(tag)}")
