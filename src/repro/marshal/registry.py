"""Registry of application struct types that may cross the wire.

The original pickles machinery marshals any Modula-3 value whose type
is known on both sides.  We reproduce the "known on both sides" rule
with an explicit registry: an application registers a class under a
stable name (on every space that will see it), and instances are then
marshaled field-by-field.  Unregistered types are rejected with
:class:`~repro.errors.MarshalError` rather than silently mis-encoded.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple, Type

from repro.errors import MarshalError, UnmarshalError


class StructCodec:
    """How to take a registered class apart and put it back together."""

    def __init__(
        self,
        name: str,
        cls: Type,
        fields: Sequence[str],
        factory: Optional[Callable[..., object]] = None,
    ):
        self.name = name
        self.cls = cls
        self.fields = tuple(fields)
        self.factory = factory

    def disassemble(self, obj: object) -> Tuple[object, ...]:
        try:
            return tuple(getattr(obj, f) for f in self.fields)
        except AttributeError as exc:
            raise MarshalError(
                f"instance of {self.name} missing field: {exc}"
            ) from exc

    def precreate(self) -> object:
        """Allocate an empty instance (fields filled in later).

        This two-phase construction lets struct instances participate
        in cyclic graphs.  Not available when an explicit ``factory``
        was registered.
        """
        return self.cls.__new__(self.cls)

    def fill(self, obj: object, values: Sequence[object]) -> None:
        self._check_arity(values)
        for field, value in zip(self.fields, values):
            object.__setattr__(obj, field, value)

    def assemble(self, values: Sequence[object]) -> object:
        """Single-phase construction through the registered factory."""
        self._check_arity(values)
        assert self.factory is not None
        return self.factory(*values)

    def _check_arity(self, values: Sequence[object]) -> None:
        if len(values) != len(self.fields):
            raise UnmarshalError(
                f"struct {self.name}: expected {len(self.fields)} fields, "
                f"got {len(values)}"
            )


class StructRegistry:
    """Thread-safe name ↔ codec mapping.

    Spaces normally share :data:`global_registry`; tests that need
    isolation may build private registries and hand them to the
    pickler/unpickler directly.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_name: Dict[str, StructCodec] = {}
        self._by_cls: Dict[Type, StructCodec] = {}

    def register(
        self,
        cls: Type,
        fields: Optional[Iterable[str]] = None,
        name: Optional[str] = None,
        factory: Optional[Callable[..., object]] = None,
    ) -> Type:
        """Register ``cls`` for marshaling; returns ``cls`` (decorator-friendly).

        ``fields`` defaults to the dataclass fields of ``cls`` (it must
        then be a dataclass).  By default instances are rebuilt with
        ``__new__`` + setattr — which allows cyclic object graphs but
        skips ``__init__``/``__post_init__``; pass ``factory`` (e.g.
        the class itself) to force constructor-based rebuilding.
        """
        if fields is None:
            if not dataclasses.is_dataclass(cls):
                raise TypeError(
                    f"{cls.__name__}: pass fields= explicitly for "
                    "non-dataclass types"
                )
            fields = [f.name for f in dataclasses.fields(cls)]
        struct_name = name if name is not None else cls.__qualname__
        codec = StructCodec(struct_name, cls, list(fields), factory)
        with self._lock:
            existing = self._by_name.get(struct_name)
            if existing is not None and existing.cls is not cls:
                raise ValueError(
                    f"struct name {struct_name!r} already registered "
                    f"for {existing.cls!r}"
                )
            self._by_name[struct_name] = codec
            self._by_cls[cls] = codec
        return cls

    def codec_for_instance(self, obj: object) -> Optional[StructCodec]:
        return self._by_cls.get(type(obj))

    def codec_for_name(self, name: str) -> StructCodec:
        codec = self._by_name.get(name)
        if codec is None:
            raise UnmarshalError(f"unknown struct type {name!r}")
        return codec

    def clear(self) -> None:
        with self._lock:
            self._by_name.clear()
            self._by_cls.clear()


#: The default registry used by spaces unless told otherwise.
global_registry = StructRegistry()


def register_struct(
    cls: Optional[Type] = None,
    *,
    fields: Optional[Iterable[str]] = None,
    name: Optional[str] = None,
    factory: Optional[Callable[..., object]] = None,
):
    """Class decorator registering a type in :data:`global_registry`.

    Usage::

        @register_struct
        @dataclass
        class Deposit:
            account: str
            amount: int
    """
    if cls is not None:
        return global_registry.register(cls, fields=fields, name=name, factory=factory)

    def decorate(inner_cls: Type) -> Type:
        return global_registry.register(
            inner_cls, fields=fields, name=name, factory=factory
        )

    return decorate
