"""Per-thread pools of reusable :class:`Pickler`/:class:`Unpickler`.

Creating a pickler per message costs three dict/list allocations plus a
buffer; at null-call rates that churn is measurable.  The pool keeps
one small stack of instances per thread (reset is cheap — the dicts
keep their storage) and rebinding the per-message netobj handler is a
single attribute store.

The stacks are per-thread, so acquire/release pairs need no locking
and reentrancy is safe: if marshaling recurses into another marshal on
the same thread (e.g. a nested call issued while unpickling), the inner
acquire simply pops the next instance — or builds a fresh one.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.marshal.pickler import NetObjHandler, Pickler
from repro.marshal.registry import StructRegistry
from repro.marshal.unpickler import Unpickler

#: Instances retained per thread; beyond this, released instances are
#: dropped for the garbage collector (deep recursion is rare).
_MAX_PER_THREAD = 4


class MarshalPool:
    """Reusable codec instances for one registry (typically one Space)."""

    def __init__(self, registry: Optional[StructRegistry] = None):
        self._registry = registry
        self._local = threading.local()

    def acquire_pickler(
        self, handler: Optional[NetObjHandler] = None
    ) -> Pickler:
        stack = self._stack("picklers")
        pickler = stack.pop() if stack else Pickler(self._registry)
        return pickler.bind(handler)

    def release_pickler(self, pickler: Pickler) -> None:
        pickler.bind(None)
        stack = self._stack("picklers")
        if len(stack) < _MAX_PER_THREAD:
            stack.append(pickler)

    def acquire_unpickler(
        self, handler: Optional[NetObjHandler] = None
    ) -> Unpickler:
        stack = self._stack("unpicklers")
        unpickler = stack.pop() if stack else Unpickler(self._registry)
        return unpickler.bind(handler)

    def release_unpickler(self, unpickler: Unpickler) -> None:
        unpickler.bind(None)
        stack = self._stack("unpicklers")
        if len(stack) < _MAX_PER_THREAD:
            stack.append(unpickler)

    def _stack(self, name: str) -> list:
        stack = getattr(self._local, name, None)
        if stack is None:
            stack = []
            setattr(self._local, name, stack)
        return stack
