"""Per-thread pools of reusable :class:`Pickler`/:class:`Unpickler`.

Creating a pickler per message costs three dict/list allocations plus a
buffer; at null-call rates that churn is measurable.  The pool keeps
one small stack of instances per thread (reset is cheap — the dicts
keep their storage) and rebinding the per-message netobj handler is a
single attribute store.

The stacks are per-thread, so acquire/release pairs need no locking
and reentrancy is safe: if marshaling recurses into another marshal on
the same thread (e.g. a nested call issued while unpickling), the inner
acquire simply pops the next instance — or builds a fresh one.

Each stack is capped (``max_per_thread``): a burst of concurrent calls
that fanned the dispatcher out to dozens of workers must not leave a
codec instance pinned on every one of those threads forever.  Releases
beyond the cap drop the instance for the garbage collector.  The
counters below are deliberately lock-free ``int +=`` — each is a
best-effort gauge for ``Space.stats()``, not an invariant.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.marshal.pickler import NetObjHandler, Pickler
from repro.marshal.registry import StructRegistry
from repro.marshal.unpickler import Unpickler

#: Default instances retained per thread; beyond this, released
#: instances are dropped for the garbage collector (deep recursion is
#: rare).
_MAX_PER_THREAD = 4


class _KindStats:
    """Best-effort gauges for one codec kind (picklers/unpicklers)."""

    __slots__ = ("created", "out", "out_high", "dropped")

    def __init__(self) -> None:
        self.created = 0    # instances ever built
        self.out = 0        # acquired and not yet released
        self.out_high = 0   # high-water mark of ``out``
        self.dropped = 0    # releases past the per-thread cap

    def acquired(self, built: bool) -> None:
        if built:
            self.created += 1
        self.out += 1
        if self.out > self.out_high:
            self.out_high = self.out

    def snapshot(self) -> dict:
        return {
            "created": self.created,
            "out": self.out,
            "out_high": self.out_high,
            "dropped": self.dropped,
        }


class MarshalPool:
    """Reusable codec instances for one registry (typically one Space)."""

    def __init__(self, registry: Optional[StructRegistry] = None,
                 max_per_thread: int = _MAX_PER_THREAD):
        self._registry = registry
        self._local = threading.local()
        self.max_per_thread = max(1, max_per_thread)
        self._picklers = _KindStats()
        self._unpicklers = _KindStats()

    def acquire_pickler(
        self, handler: Optional[NetObjHandler] = None
    ) -> Pickler:
        stack = self._stack("picklers")
        if stack:
            pickler = stack.pop()
            self._picklers.acquired(built=False)
        else:
            pickler = Pickler(self._registry)
            self._picklers.acquired(built=True)
        return pickler.bind(handler)

    def release_pickler(self, pickler: Pickler) -> None:
        pickler.bind(None)
        self._picklers.out -= 1
        stack = self._stack("picklers")
        if len(stack) < self.max_per_thread:
            stack.append(pickler)
        else:
            self._picklers.dropped += 1

    def acquire_unpickler(
        self, handler: Optional[NetObjHandler] = None
    ) -> Unpickler:
        stack = self._stack("unpicklers")
        if stack:
            unpickler = stack.pop()
            self._unpicklers.acquired(built=False)
        else:
            unpickler = Unpickler(self._registry)
            self._unpicklers.acquired(built=True)
        return unpickler.bind(handler)

    def release_unpickler(self, unpickler: Unpickler) -> None:
        unpickler.bind(None)
        self._unpicklers.out -= 1
        stack = self._stack("unpicklers")
        if len(stack) < self.max_per_thread:
            stack.append(unpickler)
        else:
            self._unpicklers.dropped += 1

    def stats(self) -> dict:
        """Snapshot of pool gauges (surfaced via ``Space.stats()``)."""
        return {
            "max_per_thread": self.max_per_thread,
            "picklers": self._picklers.snapshot(),
            "unpicklers": self._unpicklers.snapshot(),
        }

    def _stack(self, name: str) -> list:
        stack = getattr(self._local, name, None)
        if stack is None:
            stack = []
            setattr(self._local, name, stack)
        return stack
