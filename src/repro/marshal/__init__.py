"""Pickles: the marshaling subsystem of Network Objects.

The paper marshals ordinary data with *pickles* — a graph-preserving
binary serialisation — and marshals network objects specially, by
wireRep.  This package is a from-scratch implementation of both halves:

* :class:`Pickler` / :class:`Unpickler` encode the supported value
  universe (None, bool, int, float, str, bytes, bytearray, list,
  tuple, dict, set, frozenset, registered application structs) while
  preserving sharing and cycles.
* Values recognised by an optional *network-object handler* are
  delegated to it, so the object runtime can substitute wireReps on
  the way out and surrogates on the way in without this package
  knowing anything about spaces or garbage collection.

Unlike the standard library's ``pickle``, unpickling data can only
construct types that were explicitly registered — a requirement both
of the reproduction (the original pickles are type-checked) and of
basic prudence when reading bytes off a network.
"""

from repro.marshal.registry import StructRegistry, global_registry, register_struct
from repro.marshal.pickler import NetObjHandler, Pickler, dumps
from repro.marshal.pool import MarshalPool
from repro.marshal.snapshot import build_replica, snapshot_state
from repro.marshal.unpickler import Unpickler, loads

__all__ = [
    "MarshalPool",
    "NetObjHandler",
    "Pickler",
    "StructRegistry",
    "Unpickler",
    "build_replica",
    "dumps",
    "global_registry",
    "loads",
    "register_struct",
    "snapshot_state",
]
