"""The pickler: Python values → bytes.

Encoding is a straightforward recursive descent with two twists that
the reproduction depends on:

* **Sharing and cycles are preserved.**  Memoizable values receive
  consecutive memo ids as their tags are emitted; repeats are emitted
  as back-references.  Mutable containers are memoized *before* their
  elements so self-referential structures terminate.
* **Network objects are delegated** to a :class:`NetObjHandler`, which
  is where the object runtime swaps in wireReps and where the
  distributed collector records the copy (the transient dirty entry of
  the algorithm).  The pickler itself stays GC-agnostic.
"""

from __future__ import annotations

import struct
from typing import Optional, Protocol

from repro.errors import MarshalError
from repro.marshal import tags
from repro.marshal.registry import StructRegistry, global_registry
from repro.wire.varint import write_uvarint

_FLOAT_STRUCT = struct.Struct("!d")

#: Values needing more than this many varint bytes use INT_BIG.
_UVARINT_MAX = (1 << 63) - 1

#: Maximum container-nesting depth.  Deeper graphs raise MarshalError /
#: UnmarshalError instead of exhausting the interpreter stack — which
#: matters twice over for the unpickler, whose input is remote data.
#: 256 keeps the encoder's ~3 Python frames per level comfortably
#: under the default interpreter recursion limit.
MAX_DEPTH = 256

#: Strings/bytes longer than this skip by-value memoization: hashing a
#: large payload for the memo table costs more than re-encoding ever
#: saves, and bulk payloads are rarely repeated within one message.
#: (A memo id is still *burned* for them so the decoder, which assigns
#: ids positionally, stays in lockstep.)
MEMO_VALUE_LIMIT = 4096

#: Canonical pickles of the two payloads every void RPC carries — the
#: argument tuple ``((), {})`` and the result ``None``.  The call path
#: special-cases them (append / compare a constant) so a null call
#: never runs the general encoder at all.  Kept next to the encoder
#: that defines the format; a marshal test pins each to a round trip.
EMPTY_ARGS_PICKLE = bytes((tags.TUPLE, 2, tags.TUPLE, 0, tags.DICT, 0))
NONE_PICKLE = bytes((tags.NONE,))


class NetObjHandler(Protocol):
    """Hook through which the object runtime plugs into pickling.

    ``recognizes`` decides whether a value is a network object (either
    a concrete exported object or a surrogate).  ``marshal`` returns
    the payload bytes to embed — typically the wireRep plus typecode
    chain — and performs whatever bookkeeping the sender requires
    (e.g. recording a transient dirty entry).  ``unmarshal`` is the
    mirror image used by the unpickler.
    """

    def recognizes(self, value: object) -> bool: ...

    def marshal(self, value: object) -> bytes: ...

    def unmarshal(self, payload: bytes) -> object: ...


class Pickler:
    """Reusable encoder; memo ids are scoped to one value graph.

    Each :meth:`dumps`/:meth:`dump_into` call encodes one message and
    resets the memo state afterwards, so one instance can be pooled and
    reused across messages (the dicts and scratch buffer keep their
    allocations).  :meth:`bind` swaps the per-message netobj handler
    without reallocating anything.
    """

    def __init__(
        self,
        registry: Optional[StructRegistry] = None,
        netobj_handler: Optional[NetObjHandler] = None,
    ):
        self._registry = registry if registry is not None else global_registry
        self._handler = netobj_handler
        self._out = bytearray()
        self._memo_by_id: dict[int, int] = {}
        self._memo_by_value: dict[tuple, int] = {}
        self._keepalive: list[object] = []
        self._next_memo = 0
        self._depth = 0

    def bind(self, netobj_handler: Optional[NetObjHandler]) -> "Pickler":
        """Attach the handler for the next message; returns ``self``."""
        self._handler = netobj_handler
        return self

    def reset(self) -> None:
        self._out.clear()
        self._memo_by_id.clear()
        self._memo_by_value.clear()
        self._keepalive.clear()
        self._next_memo = 0
        self._depth = 0

    def dumps(self, value: object) -> bytes:
        """Encode ``value`` and return the pickle bytes."""
        try:
            self._write(value)
            return bytes(self._out)
        finally:
            self.reset()

    def dump_into(self, value: object, out: bytearray) -> None:
        """Encode ``value`` by appending directly to ``out``.

        This is the zero-copy send path: ``out`` is typically a frame
        buffer already holding the message envelope, so the pickle is
        produced in its final resting place with no intermediate
        ``bytes`` materialisation.
        """
        own = self._out
        self._out = out
        try:
            self._write(value)
        finally:
            self._out = own
            self.reset()

    # -- memo management ----------------------------------------------------

    def _assign_memo_id(self, value: object, by_value: bool = False) -> int:
        memo_id = self._next_memo
        self._next_memo += 1
        if by_value:
            self._memo_by_value[(type(value), value)] = memo_id
        else:
            self._memo_by_id[id(value)] = memo_id
            # Hold a reference so id() cannot be recycled mid-pickle.
            self._keepalive.append(value)
        return memo_id

    def _write_ref(self, memo_id: int) -> None:
        self._out.append(tags.REF)
        write_uvarint(self._out, memo_id)

    # -- encoders -------------------------------------------------------------

    def _write(self, value: object) -> None:
        self._depth += 1
        if self._depth > MAX_DEPTH:
            self._depth -= 1
            raise MarshalError(
                f"value nesting exceeds {MAX_DEPTH} levels"
            )
        try:
            self._write_inner(value)
        finally:
            self._depth -= 1

    def _write_inner(self, value: object) -> None:
        # Singletons first (bool is an int subclass, so True/False must
        # never reach the type table), then one dict lookup replaces
        # the former 14-branch if/elif chain.
        if value is None:
            self._out.append(tags.NONE)
        elif value is True:
            self._out.append(tags.TRUE)
        elif value is False:
            self._out.append(tags.FALSE)
        else:
            writer = _DISPATCH.get(type(value))
            if writer is not None:
                writer(self, value)
            elif self._handler is not None and self._handler.recognizes(value):
                self._write_netobj(value)
            else:
                self._write_struct(value)

    def _write_int(self, value: int) -> None:
        out = self._out
        if 0 <= value <= _UVARINT_MAX:
            out.append(tags.INT_POS)
            write_uvarint(out, value)
        elif -_UVARINT_MAX - 1 <= value < 0:
            out.append(tags.INT_NEG)
            write_uvarint(out, -1 - value)
        else:
            raw = value.to_bytes(
                (value.bit_length() + 8) // 8, "little", signed=True
            )
            out.append(tags.INT_BIG)
            write_uvarint(out, len(raw))
            out += raw

    def _write_float(self, value: float) -> None:
        self._out.append(tags.FLOAT)
        self._out += _FLOAT_STRUCT.pack(value)

    def _write_str(self, value: str) -> None:
        if len(value) <= MEMO_VALUE_LIMIT:
            memo_id = self._memo_by_value.get((str, value))
            if memo_id is not None:
                self._write_ref(memo_id)
                return
            self._assign_memo_id(value, by_value=True)
        else:
            # Burn the id (decoder numbering is positional) but skip
            # hashing the payload into the memo table.
            self._next_memo += 1
        encoded = value.encode("utf-8")
        self._out.append(tags.STR)
        write_uvarint(self._out, len(encoded))
        self._out += encoded

    def _write_bytes(self, value: bytes) -> None:
        if len(value) <= MEMO_VALUE_LIMIT:
            memo_id = self._memo_by_value.get((bytes, value))
            if memo_id is not None:
                self._write_ref(memo_id)
                return
            self._assign_memo_id(value, by_value=True)
        else:
            self._next_memo += 1
        self._out.append(tags.BYTES)
        write_uvarint(self._out, len(value))
        self._out += value

    def _write_bytearray(self, value: bytearray) -> None:
        # Mutable, so identity-memoized: two occurrences of the *same*
        # bytearray stay aliased after a round trip.
        memo_id = self._memo_by_id.get(id(value))
        if memo_id is not None:
            self._write_ref(memo_id)
            return
        self._assign_memo_id(value)
        self._out.append(tags.BYTEARRAY)
        write_uvarint(self._out, len(value))
        self._out += value

    def _write_list(self, value: list) -> None:
        memo_id = self._memo_by_id.get(id(value))
        if memo_id is not None:
            self._write_ref(memo_id)
            return
        self._assign_memo_id(value)
        self._out.append(tags.LIST)
        write_uvarint(self._out, len(value))
        for item in value:
            self._write(item)

    def _write_tuple(self, value: tuple) -> None:
        memo_id = self._memo_by_id.get(id(value))
        if memo_id is not None:
            self._write_ref(memo_id)
            return
        self._assign_memo_id(value)
        self._out.append(tags.TUPLE)
        write_uvarint(self._out, len(value))
        for item in value:
            self._write(item)

    def _write_dict(self, value: dict) -> None:
        memo_id = self._memo_by_id.get(id(value))
        if memo_id is not None:
            self._write_ref(memo_id)
            return
        self._assign_memo_id(value)
        self._out.append(tags.DICT)
        write_uvarint(self._out, len(value))
        for key, item in value.items():
            self._write(key)
            self._write(item)

    def _write_set(self, tag: int, value) -> None:
        memo_id = self._memo_by_id.get(id(value))
        if memo_id is not None:
            self._write_ref(memo_id)
            return
        self._assign_memo_id(value)
        self._out.append(tag)
        write_uvarint(self._out, len(value))
        for item in value:
            self._write(item)

    def _write_mutable_set(self, value: set) -> None:
        self._write_set(tags.SET, value)

    def _write_frozenset(self, value: frozenset) -> None:
        self._write_set(tags.FROZENSET, value)

    def _write_netobj(self, value: object) -> None:
        memo_id = self._memo_by_id.get(id(value))
        if memo_id is not None:
            self._write_ref(memo_id)
            return
        self._assign_memo_id(value)
        payload = self._handler.marshal(value)
        self._out.append(tags.NETOBJ)
        write_uvarint(self._out, len(payload))
        self._out += payload

    def _write_struct(self, value: object) -> None:
        codec = self._registry.codec_for_instance(value)
        if codec is None:
            raise MarshalError(
                f"cannot pickle value of unregistered type "
                f"{type(value).__qualname__}"
            )
        memo_id = self._memo_by_id.get(id(value))
        if memo_id is not None:
            self._write_ref(memo_id)
            return
        self._assign_memo_id(value)
        self._out.append(tags.STRUCT)
        self._write_str(codec.name)
        fields = codec.disassemble(value)
        write_uvarint(self._out, len(fields))
        for field_value in fields:
            self._write(field_value)


#: Exact-type dispatch table for :meth:`Pickler._write_inner`.
#: Subclasses of these types deliberately do *not* hit the fast path:
#: they fall through to the struct registry, exactly as the old
#: ``type(value) is X`` chain behaved.
_DISPATCH = {
    int: Pickler._write_int,
    float: Pickler._write_float,
    str: Pickler._write_str,
    bytes: Pickler._write_bytes,
    bytearray: Pickler._write_bytearray,
    list: Pickler._write_list,
    tuple: Pickler._write_tuple,
    dict: Pickler._write_dict,
    set: Pickler._write_mutable_set,
    frozenset: Pickler._write_frozenset,
}


def dumps(
    value: object,
    registry: Optional[StructRegistry] = None,
    netobj_handler: Optional[NetObjHandler] = None,
) -> bytes:
    """One-shot convenience wrapper around :class:`Pickler`."""
    return Pickler(registry, netobj_handler).dumps(value)
