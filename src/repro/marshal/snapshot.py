"""Lease snapshots: capturing and replaying an object's read state.

A read lease (protocol v4) ships a *snapshot* of an exported object's
lease-safe state to the holder, which rebuilds a local *replica* and
runs ``@reads`` methods against it.  This module owns the two halves
of that round trip; the actual byte encoding is the ordinary pickle
codec (with the connection's network-object handler, so NetObj values
inside the state marshal as references, not copies).

Classes can customise what a snapshot contains:

``__lease_state__(self) -> dict``
    Return the state to ship.  Default: ``dict(vars(self))``.

``__set_lease_state__(self, state: dict) -> None``
    Install a received snapshot into a freshly allocated replica.
    Default: update ``__dict__`` (with a ``setattr`` fallback for
    ``__slots__`` classes).

The replica is built with ``cls.__new__(cls)`` — ``__init__`` is never
run, exactly like unpickling — where ``cls`` is the *client's* view of
the type (the narrowest registered class for the typecode), which may
be a pure interface.  A replica method that turns out to be
unrunnable locally (``NotImplementedError`` from an interface stub)
makes the client mark the type unleasable and fall back to RPC.
"""

from __future__ import annotations

from typing import Type


def snapshot_state(obj) -> dict:
    """The lease-safe state of ``obj``, as a plain dict."""
    hook = getattr(obj, "__lease_state__", None)
    if hook is not None:
        state = hook()
        if not isinstance(state, dict):
            raise TypeError(
                f"__lease_state__ must return a dict, got {type(state).__name__}"
            )
        return state
    return dict(vars(obj))


def build_replica(cls: Type, state: dict):
    """Allocate an instance of ``cls`` and install ``state`` into it."""
    replica = cls.__new__(cls)
    hook = getattr(replica, "__set_lease_state__", None)
    if hook is not None:
        hook(state)
        return replica
    try:
        replica.__dict__.update(state)
    except AttributeError:  # __slots__ class without a __dict__
        for name, value in state.items():
            setattr(replica, name, value)
    return replica
