"""Type tags of the pickle format.

A pickled value is a single byte tag followed by tag-specific payload.
Container tags are followed by a count and their elements, recursively.
Memoizable values (containers, strings, byte strings, structs and
network objects) are assigned consecutive *memo ids* in the order their
tags are written; a later occurrence of the same value is written as
``REF <memo id>``.  Pickler and unpickler assign memo ids in lockstep,
so no ids appear on the wire except inside ``REF``.
"""

NONE = 0x00
TRUE = 0x01
FALSE = 0x02
INT_POS = 0x03      # uvarint
INT_NEG = 0x04      # uvarint of (-1 - value)
INT_BIG = 0x05      # uvarint byte-length + signed little-endian bytes
FLOAT = 0x06        # 8 bytes IEEE-754 big-endian
STR = 0x07          # uvarint byte-length + UTF-8 (memoized)
BYTES = 0x08        # uvarint length + raw (memoized)
BYTEARRAY = 0x09    # uvarint length + raw (memoized)
LIST = 0x0A         # uvarint count + items (memoized before items)
TUPLE = 0x0B        # uvarint count + items (memo slot reserved first)
DICT = 0x0C         # uvarint count + key/value pairs (memoized first)
SET = 0x0D          # uvarint count + items (memoized first)
FROZENSET = 0x0E    # uvarint count + items (memo slot reserved first)
REF = 0x0F          # uvarint memo id
STRUCT = 0x10       # type-name str-pickle + uvarint nfields + values
NETOBJ = 0x11       # uvarint length + handler-defined payload (memoized)

_NAMES = {
    value: name
    for name, value in list(globals().items())
    if isinstance(value, int) and not name.startswith("_")
}


def tag_name(tag: int) -> str:
    """Human-readable name of a pickle tag (diagnostics)."""
    return _NAMES.get(tag, f"0x{tag:02x}")
