"""Event scheduler driving the simulated network.

Events are ``(virtual time, sequence, action)`` triples in a heap.  A
dedicated daemon thread pops events in timestamp order, advances the
virtual clock, and runs the action.  Wall-clock time is *not* consumed
while waiting: an empty queue simply blocks until someone schedules.

The sequence number makes ordering total and FIFO among simultaneous
events, which keeps runs deterministic for a fixed seed and schedule.
"""

from __future__ import annotations

import heapq
import threading
from typing import Callable, List, Optional, Tuple

from repro.sim.clock import VirtualClock

Action = Callable[[], None]


class EventScheduler:
    """The virtual-time event loop (see module docstring)."""
    def __init__(self, clock: Optional[VirtualClock] = None):
        self.clock = clock if clock is not None else VirtualClock()
        self._heap: List[Tuple[float, int, Action]] = []
        self._seq = 0
        self._cond = threading.Condition()
        self._running = False
        self._idle = True
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Start the background event loop (idempotent)."""
        with self._cond:
            if self._running:
                return
            self._running = True
            self._thread = threading.Thread(
                target=self._run, name="sim-scheduler", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        """Stop the loop; pending events are discarded."""
        with self._cond:
            self._running = False
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    # -- scheduling -----------------------------------------------------------

    def schedule_at(self, timestamp: float, action: Action) -> None:
        """Run ``action`` when virtual time reaches ``timestamp``."""
        with self._cond:
            self._seq += 1
            heapq.heappush(self._heap, (timestamp, self._seq, action))
            self._cond.notify_all()

    def schedule_after(self, delay: float, action: Action) -> None:
        self.schedule_at(self.clock.now() + delay, action)

    def pending(self) -> int:
        with self._cond:
            return len(self._heap)

    def wait_idle(self, timeout: float = 10.0) -> bool:
        """Block until the event queue drains; True if it did."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self._idle and not self._heap, timeout=timeout
            )

    # -- event loop -----------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                while self._running and not self._heap:
                    self._idle = True
                    self._cond.notify_all()
                    self._cond.wait()
                if not self._running:
                    self._idle = True
                    self._cond.notify_all()
                    return
                self._idle = False
                timestamp, _seq, action = heapq.heappop(self._heap)
            self.clock.advance_to(timestamp)
            try:
                action()
            except Exception:  # noqa: BLE001 - an action must never kill the loop
                import traceback

                traceback.print_exc()
            with self._cond:
                if not self._heap:
                    self._idle = True
                    self._cond.notify_all()
