"""The simulated point-to-point network.

Models the channel properties the algorithms in this repository care
about:

* one-way **latency** with optional **jitter** (jitter plus non-FIFO
  delivery yields message reordering, the condition under which the
  `ccitnil` state of the collector is load-bearing);
* optional per-message **loss**, for the fault-tolerance experiments;
* optional **FIFO enforcement** per (source, destination) pair, the
  channel assumption of the Section-5 variant of the collector.

Deliveries are actions on an :class:`~repro.sim.scheduler.EventScheduler`;
the model is shared by every simulated channel in a process.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple


@dataclass
class NetworkModel:
    """Tunable channel properties of a :class:`SimNetwork`."""

    latency: float = 0.001          # one-way delay, seconds of virtual time
    jitter: float = 0.0             # uniform extra delay in [0, jitter]
    drop_probability: float = 0.0   # per-message loss
    fifo: bool = False              # enforce per-pair ordering
    seed: int = 0                   # determinism for jitter and loss
    #: When set, only frames whose first byte (the protocol tag) is in
    #: this set are subject to loss — e.g. drop only clean/clean_ack
    #: traffic to exercise the collector's retry machinery without
    #: starving un-retried mutator calls.
    drop_tags: Optional[frozenset] = None

    def __post_init__(self) -> None:
        if self.latency < 0 or self.jitter < 0:
            raise ValueError("latency and jitter must be non-negative")
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")


@dataclass
class NetworkStats:
    """Counters maintained by the network for the benchmarks."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    bytes_sent: int = 0
    by_tag: Dict[int, int] = field(default_factory=dict)

    def snapshot(self) -> "NetworkStats":
        return NetworkStats(
            self.sent, self.delivered, self.dropped,
            self.bytes_sent, dict(self.by_tag),
        )


class SimNetwork:
    """Schedules message deliveries under a :class:`NetworkModel`."""

    def __init__(self, scheduler, model: Optional[NetworkModel] = None):
        self.scheduler = scheduler
        self.model = model if model is not None else NetworkModel()
        self.stats = NetworkStats()
        self._rng = random.Random(self.model.seed)
        self._lock = threading.Lock()
        # Last scheduled delivery time per (src, dst), for FIFO mode.
        self._last_delivery: Dict[Tuple[str, str], float] = {}

    def send(
        self,
        src: str,
        dst: str,
        payload: bytes,
        deliver: Callable[[bytes], None],
    ) -> None:
        """Submit ``payload`` for delivery via ``deliver`` (or drop it).

        The first payload byte is treated as the protocol tag for the
        per-tag accounting; transports that do not use the protocol
        module still get correct aggregate counts.
        """
        with self._lock:
            self.stats.sent += 1
            self.stats.bytes_sent += len(payload)
            if payload:
                tag = payload[0]
                self.stats.by_tag[tag] = self.stats.by_tag.get(tag, 0) + 1
            droppable = (
                self.model.drop_tags is None
                or (bool(payload) and payload[0] in self.model.drop_tags)
            )
            if droppable and self._rng.random() < self.model.drop_probability:
                self.stats.dropped += 1
                return
            delay = self.model.latency
            if self.model.jitter:
                delay += self._rng.uniform(0.0, self.model.jitter)
            when = self.scheduler.clock.now() + delay
            if self.model.fifo:
                key = (src, dst)
                previous = self._last_delivery.get(key, 0.0)
                when = max(when, previous)
                self._last_delivery[key] = when

            def action() -> None:
                with self._lock:
                    self.stats.delivered += 1
                deliver(payload)

            # Scheduled under the lock so that two sends on the same
            # FIFO pair cannot race into the heap out of order when
            # their delivery timestamps tie.
            self.scheduler.schedule_at(when, action)

    def reset_stats(self) -> None:
        with self._lock:
            self.stats = NetworkStats()
