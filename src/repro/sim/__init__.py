"""Discrete-event simulation substrate.

The paper's measurements ran on real DECstations and a real Ethernet;
we do not have that testbed, so alongside real TCP sockets this
repository provides a simulated network with a virtual clock.  The
simulation gives three things the reproduction needs:

* **Determinism** — fault-injection experiments (message loss, delay,
  reordering) replay exactly from a seed.
* **A latency model** — one-way delay, jitter and FIFO/non-FIFO
  channel behaviour are explicit parameters, so the *shape* of the
  paper's latency tables is reproducible without its hardware.
* **Accounting** — every delivered message is counted by type, which
  the GC-overhead experiments read back.
"""

from repro.sim.clock import VirtualClock
from repro.sim.scheduler import EventScheduler
from repro.sim.network import NetworkModel, SimNetwork

__all__ = ["EventScheduler", "NetworkModel", "SimNetwork", "VirtualClock"]
