"""A virtual clock that only moves when the scheduler advances it."""

from __future__ import annotations

import threading


class VirtualClock:
    """Monotonic simulated time in seconds.

    The scheduler advances the clock to each event's timestamp as it
    fires; application threads may read it at any moment.  Virtual
    time has no relation to wall-clock time — an idle simulation jumps
    instantly to the next event.
    """

    def __init__(self, start: float = 0.0):
        self._now = start
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move time forward; rejects travel into the past."""
        with self._lock:
            if timestamp < self._now:
                raise ValueError(
                    f"clock cannot run backwards ({timestamp} < {self._now})"
                )
            self._now = timestamp
